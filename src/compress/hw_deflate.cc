#include "compress/hw_deflate.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "compress/deflate.h"
#include "kernels/match.h"

namespace sd::compress {

namespace {

/** Hash of 4 bytes, as a pipelined hasher would compute per lane. */
inline std::uint32_t
hash4(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v * 2654435761u;
}

/** One candidate slot in the banked config-memory hash table. */
struct Slot
{
    std::uint64_t position = 0; ///< absolute input offset
    std::uint64_t inserted = 0; ///< age counter for oldest-replacement
    bool valid = false;
};

} // namespace

std::vector<Lz77Token>
hwDeflateTokens(const std::uint8_t *data, std::size_t len,
                const HwDeflateConfig &config, HwDeflateStats *stats)
{
    SD_ASSERT(config.parallel_window >= 1 && config.banks >= 1,
              "degenerate hardware deflate config");

    HwDeflateStats local{};
    std::vector<Lz77Token> tokens;
    tokens.reserve(len / 2 + 8);

    // Banked hash table: bank = hash % banks, set = hash / banks %
    // entries. Each (bank, set) holds a single candidate — the paper's
    // fixed-size table with oldest-replacement degenerates to direct
    // mapped per set; overflow replaces the older entry.
    std::vector<Slot> table(config.banks * config.entries_per_bank);
    std::uint64_t age = 0;

    // Per-step bank arbitration, epoch-stamped: a bank is busy this
    // step iff its stamp equals the current epoch. O(1) per probe with
    // no per-step clearing or allocation.
    std::vector<std::uint64_t> bank_epoch(config.banks, 0);
    std::uint64_t epoch = 0;
    std::vector<std::int64_t> lane_candidate(config.parallel_window);

    std::size_t pos = 0;
    while (pos < len) {
        ++local.steps;
        const std::size_t lanes =
            std::min(config.parallel_window, len - pos);

        // Phase 1: all lanes probe the hash table concurrently; each
        // bank serves one probe per cycle — further probes to the same
        // bank are dropped in best-effort mode.
        ++epoch;
        std::fill(lane_candidate.begin(),
                  lane_candidate.begin() + static_cast<std::ptrdiff_t>(lanes),
                  std::int64_t{-1});
        for (std::size_t lane = 0; lane < lanes; ++lane) {
            const std::size_t p = pos + lane;
            if (p + 4 > len)
                break;
            const std::uint32_t h = hash4(data + p);
            const std::size_t bank = h % config.banks;
            const std::size_t set =
                (h / config.banks) % config.entries_per_bank;
            ++local.candidates;

            if (config.drop_on_conflict && bank_epoch[bank] == epoch) {
                ++local.bank_conflicts;
                continue; // candidate discarded, no insert either
            }
            bank_epoch[bank] = epoch;

            Slot &slot = table[bank * config.entries_per_bank + set];
            if (slot.valid &&
                pos + lane >= slot.position &&
                pos + lane - slot.position <= config.history)
                lane_candidate[lane] =
                    static_cast<std::int64_t>(slot.position);

            if (slot.valid)
                ++local.replaced_oldest;
            slot.position = p;
            slot.inserted = age++;
            slot.valid = true;
        }

        // Phase 2: resolve lanes left-to-right. A match covering later
        // lanes consumes them (the pipeline merges extensions).
        std::size_t lane = 0;
        while (lane < lanes) {
            const std::size_t p = pos + lane;
            std::size_t match_len = 0;
            std::size_t dist = 0;
            if (lane_candidate[lane] >= 0) {
                const auto cpos =
                    static_cast<std::size_t>(lane_candidate[lane]);
                const std::size_t limit =
                    std::min(config.max_match, len - p);
                // Comparing input against input handles overlapping
                // (distance < length) matches correctly by induction,
                // the same shift-register trick the pipeline uses.
                const std::size_t ml =
                    kernels::matchLen(data + cpos, data + p, limit);
                if (ml >= kMinMatch) {
                    match_len = ml;
                    dist = p - cpos;
                }
            }
            if (match_len >= kMinMatch && dist >= 1 &&
                dist <= config.history) {
                tokens.push_back(Lz77Token::match(
                    static_cast<std::uint16_t>(match_len),
                    static_cast<std::uint16_t>(dist)));
                ++local.matches;
                lane += match_len; // may run past the window
            } else {
                tokens.push_back(Lz77Token::lit(data[p]));
                ++local.literals;
                ++lane;
            }
        }
        // A match in the last lanes may overrun the window; those
        // bytes are already encoded, so skip them next step.
        pos += std::max(lanes, lane);
    }

    if (stats)
        *stats = local;
    return tokens;
}

std::vector<std::uint8_t>
hwDeflateCompress(const std::uint8_t *data, std::size_t len,
                  const HwDeflateConfig &config, HwDeflateStats *stats)
{
    HwDeflateStats total{};
    std::vector<std::uint8_t> out;

    // Page-granular compression, each page an independent stream
    // prefixed by a 16-bit compressed-length header so the consumer
    // can find page boundaries (the software stack writes each page to
    // the socket separately, Sec. V-C).
    for (std::size_t off = 0; off < len; off += 4096) {
        const std::size_t take = std::min<std::size_t>(4096, len - off);
        HwDeflateStats page_stats{};
        const auto tokens =
            hwDeflateTokens(data + off, take, config, &page_stats);
        auto page = deflateEncodeTokens(tokens, DeflateStrategy::kFixed);
        // Incompressible pages fall back to a stored block, exactly as
        // the fixed-function encoder must to bound expansion.
        if (page.size() > take) {
            auto stored = deflateCompress(data + off, take,
                                          DeflateStrategy::kStored);
            if (stored.bytes.size() < page.size())
                page = std::move(stored.bytes);
        }

        total.steps += page_stats.steps;
        total.candidates += page_stats.candidates;
        total.bank_conflicts += page_stats.bank_conflicts;
        total.matches += page_stats.matches;
        total.literals += page_stats.literals;
        total.replaced_oldest += page_stats.replaced_oldest;

        SD_ASSERT(page.size() <= 0xffff, "page stream overflow");
        out.push_back(static_cast<std::uint8_t>(page.size() & 0xff));
        out.push_back(static_cast<std::uint8_t>(page.size() >> 8));
        out.insert(out.end(), page.begin(), page.end());
    }

    if (stats)
        *stats = total;
    return out;
}

} // namespace sd::compress
