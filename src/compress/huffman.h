/**
 * @file
 * Canonical Huffman coding (the second Deflate stage). Builds
 * length-limited canonical codes from symbol frequencies and provides
 * encode tables plus a bit-level decoder.
 */

#ifndef SD_COMPRESS_HUFFMAN_H
#define SD_COMPRESS_HUFFMAN_H

#include <cstdint>
#include <optional>
#include <vector>

#include "compress/bitstream.h"

namespace sd::compress {

/** Canonical code for one symbol. */
struct HuffmanCode
{
    std::uint16_t code = 0; ///< MSB-first code value
    std::uint8_t length = 0; ///< 0 means symbol unused
};

/**
 * Compute length-limited canonical Huffman code lengths for the given
 * frequencies (zero-frequency symbols get length 0). Uses the standard
 * heap construction followed by depth clamping with Kraft repair.
 *
 * @param freqs per-symbol frequency
 * @param max_bits maximum code length (15 for Deflate)
 */
std::vector<std::uint8_t> huffmanCodeLengths(
    const std::vector<std::uint64_t> &freqs, unsigned max_bits);

/** Expand code lengths into canonical codes (RFC 1951 ordering). */
std::vector<HuffmanCode> canonicalCodes(
    const std::vector<std::uint8_t> &lengths);

/**
 * Table-free canonical decoder: walks the bitstream one bit at a time
 * using first-code/offset arrays (adequate for simulation workloads).
 */
class HuffmanDecoder
{
  public:
    /** Build from the same code lengths the encoder used. */
    explicit HuffmanDecoder(const std::vector<std::uint8_t> &lengths);

    /** Decode one symbol from @p reader. Panics on malformed input. */
    std::uint16_t decode(BitReader &reader) const;

    /**
     * Non-panicking decode for untrusted input: nullopt when the code
     * is not in the table or the bitstream runs out of bits.
     */
    std::optional<std::uint16_t> tryDecode(BitReader &reader) const;

    /** @return true if at least one symbol has a code. */
    bool valid() const { return valid_; }

  private:
    // For each length L: first canonical code value and the index of
    // the first symbol of that length in sorted_symbols_.
    std::vector<std::uint32_t> first_code_;
    std::vector<std::uint32_t> first_index_;
    std::vector<std::uint16_t> sorted_symbols_;
    unsigned max_len_ = 0;
    bool valid_ = false;
};

} // namespace sd::compress

#endif // SD_COMPRESS_HUFFMAN_H
