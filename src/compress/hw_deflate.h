/**
 * @file
 * Hardware-constrained Deflate match finder modelling the SmartDIMM
 * Deflate DSA (Sec. V-B): an 8-byte parallelisation window processed
 * per buffer-device cycle, candidate substrings held in an 8-bank
 * Config Memory hash table covering a 4 KB history, best-effort bank
 * arbitration (conflicting candidates are dropped), and
 * oldest-replacement on hash-set overflow. Output is entropy-coded
 * with fixed Huffman tables for deterministic latency, so the
 * software `deflateDecompress` can verify every byte.
 */

#ifndef SD_COMPRESS_HW_DEFLATE_H
#define SD_COMPRESS_HW_DEFLATE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "compress/lz77.h"

namespace sd::compress {

/** Geometry and policy of the hardware match pipeline. */
struct HwDeflateConfig
{
    /** Bytes consumed per pipeline step (paper: 8). */
    std::size_t parallel_window = 8;

    /** Candidate-memory banks with single-access-per-step ports
     *  relevant to conflicts (paper: 8 banks). */
    std::size_t banks = 8;

    /** Entries per bank (hash-table ways share a bank row). */
    std::size_t entries_per_bank = 512;

    /** History window the DSA can reference (paper: 4 KB). */
    std::size_t history = 4096;

    /** Maximum match length the pipeline can merge per step chain. */
    std::size_t max_match = kMaxMatch;

    /** When true, bank conflicts drop the younger candidate
     *  (the paper's best-effort policy); when false, an idealised
     *  multi-ported memory is modelled (ablation). */
    bool drop_on_conflict = true;
};

/** Activity counters for power modelling and ablation benches. */
struct HwDeflateStats
{
    std::uint64_t steps = 0;            ///< pipeline steps (cycles)
    std::uint64_t candidates = 0;       ///< hash probes issued
    std::uint64_t bank_conflicts = 0;   ///< candidates dropped
    std::uint64_t matches = 0;
    std::uint64_t literals = 0;
    std::uint64_t replaced_oldest = 0;  ///< hash overflow evictions
};

/**
 * Match-find @p len bytes the way the DSA would, returning Deflate
 * tokens. The token stream is valid LZ77 (distances bounded by the
 * 4 KB history), so ratio loss relative to the software matcher is
 * attributable purely to the hardware constraints.
 */
std::vector<Lz77Token> hwDeflateTokens(const std::uint8_t *data,
                                       std::size_t len,
                                       const HwDeflateConfig &config = {},
                                       HwDeflateStats *stats = nullptr);

/**
 * Full DSA compression: hardware match finding + fixed-Huffman
 * encoding, one 4 KB page at a time (the software stack compresses at
 * page granularity, Sec. V-C).
 */
std::vector<std::uint8_t> hwDeflateCompress(const std::uint8_t *data,
                                            std::size_t len,
                                            const HwDeflateConfig &config = {},
                                            HwDeflateStats *stats = nullptr);

} // namespace sd::compress

#endif // SD_COMPRESS_HW_DEFLATE_H
