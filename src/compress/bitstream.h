/**
 * @file
 * LSB-first bit-level reader/writer used by the DEFLATE codec
 * (RFC 1951 packs code bits least-significant-bit first).
 */

#ifndef SD_COMPRESS_BITSTREAM_H
#define SD_COMPRESS_BITSTREAM_H

#include <cstdint>
#include <vector>

#include "common/log.h"

namespace sd::compress {

/** Append-only LSB-first bit writer. */
class BitWriter
{
  public:
    /** Append the low @p count bits of @p bits (count <= 32). */
    void
    put(std::uint32_t bits, unsigned count)
    {
        SD_ASSERT(count <= 32, "bit run too long");
        acc_ |= static_cast<std::uint64_t>(bits &
                  (count >= 32 ? 0xffffffffu : ((1u << count) - 1)))
                << fill_;
        fill_ += count;
        while (fill_ >= 8) {
            bytes_.push_back(static_cast<std::uint8_t>(acc_));
            acc_ >>= 8;
            fill_ -= 8;
        }
    }

    /** Append Huffman code bits MSB-first (RFC 1951 code order). */
    void
    putHuffman(std::uint32_t code, unsigned count)
    {
        // Reverse so the code's MSB is emitted first.
        std::uint32_t rev = 0;
        for (unsigned i = 0; i < count; ++i)
            rev |= ((code >> i) & 1u) << (count - 1 - i);
        put(rev, count);
    }

    /** Pad to a byte boundary with zero bits. */
    void
    alignByte()
    {
        if (fill_ > 0) {
            bytes_.push_back(static_cast<std::uint8_t>(acc_));
            acc_ = 0;
            fill_ = 0;
        }
    }

    /** Finish and take the byte buffer. */
    std::vector<std::uint8_t>
    finish()
    {
        alignByte();
        return std::move(bytes_);
    }

    /** Bits written so far. */
    std::size_t bitCount() const { return bytes_.size() * 8 + fill_; }

  private:
    std::vector<std::uint8_t> bytes_;
    std::uint64_t acc_ = 0;
    unsigned fill_ = 0;
};

/** LSB-first bit reader over a byte span. */
class BitReader
{
  public:
    BitReader(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {
    }

    /** @return the next @p count bits (LSB-first), consuming them. */
    std::uint32_t
    take(unsigned count)
    {
        SD_ASSERT(count <= 32, "bit run too long");
        while (fill_ < count) {
            SD_ASSERT(pos_ < len_, "bitstream underflow");
            acc_ |= static_cast<std::uint64_t>(data_[pos_++]) << fill_;
            fill_ += 8;
        }
        const std::uint32_t out = static_cast<std::uint32_t>(
            acc_ & (count >= 32 ? 0xffffffffu : ((1u << count) - 1)));
        acc_ >>= count;
        fill_ -= count;
        return out;
    }

    /** Take a single bit. */
    std::uint32_t takeBit() { return take(1); }

    /** Discard bits to the next byte boundary. */
    void
    alignByte()
    {
        const unsigned drop = fill_ % 8;
        acc_ >>= drop;
        fill_ -= drop;
    }

    /** @return true when no full byte and no buffered bits remain. */
    bool exhausted() const { return pos_ >= len_ && fill_ == 0; }

    /** Bits still readable (buffered plus unread bytes). */
    std::size_t bitsRemaining() const { return (len_ - pos_) * 8 + fill_; }

    /**
     * Non-panicking take for untrusted input: @return false (without
     * consuming anything) when fewer than @p count bits remain.
     */
    bool
    tryTake(unsigned count, std::uint32_t &out)
    {
        if (count > 32 || bitsRemaining() < count)
            return false;
        out = take(count);
        return true;
    }

  private:
    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
    std::uint64_t acc_ = 0;
    unsigned fill_ = 0;
};

} // namespace sd::compress

#endif // SD_COMPRESS_BITSTREAM_H
