#include "compress/huffman.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/log.h"

namespace sd::compress {

std::vector<std::uint8_t>
huffmanCodeLengths(const std::vector<std::uint64_t> &freqs,
                   unsigned max_bits)
{
    const std::size_t n = freqs.size();
    std::vector<std::uint8_t> lengths(n, 0);

    // Collect used symbols.
    std::vector<std::size_t> used;
    for (std::size_t i = 0; i < n; ++i)
        if (freqs[i] > 0)
            used.push_back(i);

    if (used.empty())
        return lengths;
    if (used.size() == 1) {
        // A single symbol still needs a 1-bit code in Deflate terms.
        lengths[used[0]] = 1;
        return lengths;
    }

    // Standard two-queue/heap Huffman tree build.
    struct Node
    {
        std::uint64_t freq;
        int left;   // node index or -1
        int right;  // node index or -1
        std::size_t symbol;
    };
    std::vector<Node> nodes;
    nodes.reserve(used.size() * 2);

    using HeapItem = std::pair<std::uint64_t, int>; // (freq, node idx)
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<>> heap;
    for (std::size_t s : used) {
        nodes.push_back(Node{freqs[s], -1, -1, s});
        heap.emplace(freqs[s], static_cast<int>(nodes.size()) - 1);
    }
    while (heap.size() > 1) {
        auto [fa, a] = heap.top();
        heap.pop();
        auto [fb, b] = heap.top();
        heap.pop();
        nodes.push_back(Node{fa + fb, a, b, 0});
        heap.emplace(fa + fb, static_cast<int>(nodes.size()) - 1);
    }

    // Depth-first depth assignment.
    struct Frame
    {
        int node;
        unsigned depth;
    };
    std::vector<Frame> stack{{heap.top().second, 0}};
    while (!stack.empty()) {
        const Frame f = stack.back();
        stack.pop_back();
        const Node &node = nodes[static_cast<std::size_t>(f.node)];
        if (node.left < 0) {
            lengths[node.symbol] =
                static_cast<std::uint8_t>(std::max(1u, f.depth));
        } else {
            stack.push_back({node.left, f.depth + 1});
            stack.push_back({node.right, f.depth + 1});
        }
    }

    // Clamp overlong codes and repair the Kraft sum: the classic
    // zlib-style adjustment (move overflowed leaves up under shorter
    // siblings).
    bool overflow = false;
    for (std::size_t s : used)
        if (lengths[s] > max_bits)
            overflow = true;
    if (overflow) {
        std::vector<std::uint32_t> bl_count(max_bits + 1, 0);
        for (std::size_t s : used)
            bl_count[std::min<unsigned>(lengths[s], max_bits)]++;
        // Kraft repair: while the code is over-subscribed, demote one
        // leaf from the deepest non-empty level above.
        auto kraft = [&]() {
            std::uint64_t sum = 0;
            for (unsigned l = 1; l <= max_bits; ++l)
                sum += static_cast<std::uint64_t>(bl_count[l])
                       << (max_bits - l);
            return sum;
        };
        const std::uint64_t budget = 1ULL << max_bits;
        while (kraft() > budget) {
            // Find a leaf at a level l < max_bits to push down one
            // level (costs less budget).
            unsigned l = max_bits - 1;
            while (l >= 1 && bl_count[l] == 0)
                --l;
            SD_ASSERT(l >= 1, "cannot repair Huffman code lengths");
            --bl_count[l];
            ++bl_count[l + 1];
        }
        // Reassign lengths: sort used symbols by (old length, freq
        // descending) and dole out the repaired length histogram.
        std::vector<std::size_t> order = used;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      if (lengths[a] != lengths[b])
                          return lengths[a] < lengths[b];
                      return freqs[a] > freqs[b];
                  });
        std::size_t idx = 0;
        for (unsigned l = 1; l <= max_bits; ++l)
            for (std::uint32_t i = 0; i < bl_count[l]; ++i)
                lengths[order[idx++]] = static_cast<std::uint8_t>(l);
        SD_ASSERT(idx == order.size(), "length histogram mismatch");
    }

    return lengths;
}

std::vector<HuffmanCode>
canonicalCodes(const std::vector<std::uint8_t> &lengths)
{
    unsigned max_len = 0;
    for (auto l : lengths)
        max_len = std::max<unsigned>(max_len, l);

    std::vector<std::uint32_t> bl_count(max_len + 1, 0);
    for (auto l : lengths)
        if (l)
            ++bl_count[l];

    // RFC 1951: next_code per length.
    std::vector<std::uint32_t> next_code(max_len + 2, 0);
    std::uint32_t code = 0;
    for (unsigned l = 1; l <= max_len; ++l) {
        code = (code + bl_count[l - 1]) << 1;
        next_code[l] = code;
    }

    std::vector<HuffmanCode> codes(lengths.size());
    for (std::size_t s = 0; s < lengths.size(); ++s) {
        if (lengths[s] == 0)
            continue;
        codes[s].length = lengths[s];
        codes[s].code =
            static_cast<std::uint16_t>(next_code[lengths[s]]++);
    }
    return codes;
}

HuffmanDecoder::HuffmanDecoder(const std::vector<std::uint8_t> &lengths)
{
    for (auto l : lengths)
        max_len_ = std::max<unsigned>(max_len_, l);
    if (max_len_ == 0)
        return;

    std::vector<std::uint32_t> bl_count(max_len_ + 1, 0);
    for (auto l : lengths)
        if (l)
            ++bl_count[l];

    first_code_.assign(max_len_ + 1, 0);
    first_index_.assign(max_len_ + 1, 0);
    // RFC 1951 next_code recurrence; bl_count[0] is implicitly 0 so
    // the l == 1 iteration yields first code 0.
    std::uint32_t code = 0;
    std::uint32_t index = 0;
    for (unsigned l = 1; l <= max_len_; ++l) {
        code = (code + bl_count[l - 1]) << 1;
        first_code_[l] = code;
        first_index_[l] = index;
        index += bl_count[l];
    }

    // Symbols sorted by (length, symbol) — canonical order.
    for (unsigned l = 1; l <= max_len_; ++l)
        for (std::size_t s = 0; s < lengths.size(); ++s)
            if (lengths[s] == l)
                sorted_symbols_.push_back(static_cast<std::uint16_t>(s));

    valid_ = !sorted_symbols_.empty();
}

std::uint16_t
HuffmanDecoder::decode(BitReader &reader) const
{
    SD_ASSERT(valid_, "decoding with an empty Huffman table");
    const auto sym = tryDecode(reader);
    SD_ASSERT(sym.has_value(), "invalid Huffman code in bitstream");
    return *sym;
}

std::optional<std::uint16_t>
HuffmanDecoder::tryDecode(BitReader &reader) const
{
    if (!valid_)
        return std::nullopt;
    std::uint32_t code = 0;
    for (unsigned l = 1; l <= max_len_; ++l) {
        std::uint32_t bit;
        if (!reader.tryTake(1, bit))
            return std::nullopt;
        code = (code << 1) | bit;
        const std::uint32_t first = first_code_[l];
        const std::uint32_t index = first_index_[l];
        const std::uint32_t count =
            (l < max_len_ ? first_index_[l + 1] : static_cast<std::uint32_t>(
                                                      sorted_symbols_.size()))
            - index;
        if (count > 0 && code >= first && code < first + count)
            return sorted_symbols_[index + (code - first)];
    }
    return std::nullopt;
}

} // namespace sd::compress
