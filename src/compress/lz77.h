/**
 * @file
 * LZ77 match finding (the first Deflate stage, Sec. II). Produces a
 * token stream of literals and (length, distance) matches that both
 * the software encoder and the hardware-constrained DSA model consume.
 */

#ifndef SD_COMPRESS_LZ77_H
#define SD_COMPRESS_LZ77_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sd::compress {

/** Minimum/maximum match lengths per the Deflate format. */
inline constexpr std::size_t kMinMatch = 3;
inline constexpr std::size_t kMaxMatch = 258;

/** Maximum back-reference distance per the Deflate format. */
inline constexpr std::size_t kMaxDistance = 32768;

/** One LZ77 token: either a literal byte or a back-reference. */
struct Lz77Token
{
    bool is_match = false;
    std::uint8_t literal = 0;   ///< valid when !is_match
    std::uint16_t length = 0;   ///< valid when is_match (3..258)
    std::uint16_t distance = 0; ///< valid when is_match (1..32768)

    static Lz77Token
    lit(std::uint8_t b)
    {
        return Lz77Token{false, b, 0, 0};
    }

    static Lz77Token
    match(std::uint16_t len, std::uint16_t dist)
    {
        return Lz77Token{true, 0, len, dist};
    }
};

/** Tuning knobs for the software match finder. */
struct Lz77Config
{
    std::size_t window = kMaxDistance; ///< history window in bytes
    std::size_t max_chain = 64;        ///< hash-chain probe limit
    bool lazy = true;                  ///< one-token lazy matching
};

/** Aggregate statistics from a match-finding pass. */
struct Lz77Stats
{
    std::uint64_t literals = 0;
    std::uint64_t matches = 0;
    std::uint64_t matched_bytes = 0;
};

/**
 * Greedy/lazy chained-hash LZ77 over @p len bytes of @p data.
 * @param stats optional out-param for token statistics.
 */
std::vector<Lz77Token> lz77Compress(const std::uint8_t *data,
                                    std::size_t len,
                                    const Lz77Config &config = {},
                                    Lz77Stats *stats = nullptr);

/** Reconstruct the original bytes from a token stream. */
std::vector<std::uint8_t> lz77Decompress(
    const std::vector<Lz77Token> &tokens);

} // namespace sd::compress

#endif // SD_COMPRESS_LZ77_H
