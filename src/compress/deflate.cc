#include "compress/deflate.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/log.h"
#include "compress/bitstream.h"
#include "compress/huffman.h"

namespace sd::compress {

namespace {

// --- RFC 1951 code tables -------------------------------------------------

/** Length code descriptor: base length and number of extra bits. */
struct LengthCode
{
    std::uint16_t base;
    std::uint8_t extra;
};

/** Length codes 257..285. */
constexpr LengthCode kLengthCodes[29] = {
    {3, 0},   {4, 0},   {5, 0},   {6, 0},   {7, 0},   {8, 0},
    {9, 0},   {10, 0},  {11, 1},  {13, 1},  {15, 1},  {17, 1},
    {19, 2},  {23, 2},  {27, 2},  {31, 2},  {35, 3},  {43, 3},
    {51, 3},  {59, 3},  {67, 4},  {83, 4},  {99, 4},  {115, 4},
    {131, 5}, {163, 5}, {195, 5}, {227, 5}, {258, 0},
};

/** Distance codes 0..29. */
constexpr LengthCode kDistCodes[30] = {
    {1, 0},     {2, 0},     {3, 0},     {4, 0},     {5, 1},
    {7, 1},     {9, 2},     {13, 2},    {17, 3},    {25, 3},
    {33, 4},    {49, 4},    {65, 5},    {97, 5},    {129, 6},
    {193, 6},   {257, 7},   {385, 7},   {513, 8},   {769, 8},
    {1025, 9},  {1537, 9},  {2049, 10}, {3073, 10}, {4097, 11},
    {6145, 11}, {8193, 12}, {12289, 12}, {16385, 13}, {24577, 13},
};

/** Order in which code-length code lengths are stored (RFC 1951). */
constexpr std::uint8_t kClOrder[19] = {
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
};

constexpr std::size_t kNumLitLen = 288; // literal/length alphabet
constexpr std::size_t kNumDist = 30;
constexpr std::uint16_t kEndOfBlock = 256;

/** Map a match length (3..258) to its length code index (0..28). */
unsigned
lengthCodeIndex(unsigned len)
{
    SD_ASSERT(len >= kMinMatch && len <= kMaxMatch, "bad match length");
    for (unsigned i = 28;; --i) {
        if (len >= kLengthCodes[i].base)
            return i;
        if (i == 0)
            break;
    }
    SD_PANIC("unreachable length code");
}

/** Map a distance (1..32768) to its distance code index (0..29). */
unsigned
distCodeIndex(unsigned dist)
{
    SD_ASSERT(dist >= 1 && dist <= kMaxDistance, "bad match distance");
    for (unsigned i = 29;; --i) {
        if (dist >= kDistCodes[i].base)
            return i;
        if (i == 0)
            break;
    }
    SD_PANIC("unreachable distance code");
}

/** Fixed literal/length code lengths (RFC 1951 sec. 3.2.6). */
std::vector<std::uint8_t>
fixedLitLenLengths()
{
    std::vector<std::uint8_t> lengths(kNumLitLen);
    for (std::size_t s = 0; s < kNumLitLen; ++s) {
        if (s <= 143)
            lengths[s] = 8;
        else if (s <= 255)
            lengths[s] = 9;
        else if (s <= 279)
            lengths[s] = 7;
        else
            lengths[s] = 8;
    }
    return lengths;
}

/** Fixed distance code lengths: all 5 bits. */
std::vector<std::uint8_t>
fixedDistLengths()
{
    return std::vector<std::uint8_t>(kNumDist, 5);
}

/** Emit one token with the given code tables. */
void
emitToken(BitWriter &writer, const Lz77Token &tok,
          const std::vector<HuffmanCode> &lit_codes,
          const std::vector<HuffmanCode> &dist_codes)
{
    if (!tok.is_match) {
        const auto &c = lit_codes[tok.literal];
        writer.putHuffman(c.code, c.length);
        return;
    }
    const unsigned lci = lengthCodeIndex(tok.length);
    const auto &lc = lit_codes[257 + lci];
    writer.putHuffman(lc.code, lc.length);
    writer.put(tok.length - kLengthCodes[lci].base, kLengthCodes[lci].extra);

    const unsigned dci = distCodeIndex(tok.distance);
    const auto &dc = dist_codes[dci];
    writer.putHuffman(dc.code, dc.length);
    writer.put(tok.distance - kDistCodes[dci].base, kDistCodes[dci].extra);
}

/** Token frequencies for dynamic table construction. */
void
countFrequencies(const std::vector<Lz77Token> &tokens,
                 std::vector<std::uint64_t> &lit_freq,
                 std::vector<std::uint64_t> &dist_freq)
{
    lit_freq.assign(kNumLitLen, 0);
    dist_freq.assign(kNumDist, 0);
    for (const auto &tok : tokens) {
        if (!tok.is_match) {
            ++lit_freq[tok.literal];
        } else {
            ++lit_freq[257 + lengthCodeIndex(tok.length)];
            ++dist_freq[distCodeIndex(tok.distance)];
        }
    }
    ++lit_freq[kEndOfBlock];
}

/**
 * Write a dynamic block header: HLIT/HDIST/HCLEN plus the
 * run-length-coded code lengths (RFC 1951 sec. 3.2.7). Returns the
 * canonical code tables to use for the block body.
 */
void
writeDynamicHeader(BitWriter &writer,
                   const std::vector<std::uint8_t> &lit_lengths,
                   const std::vector<std::uint8_t> &dist_lengths)
{
    // Trim trailing zero lengths but respect the minimums.
    std::size_t hlit = kNumLitLen;
    while (hlit > 257 && lit_lengths[hlit - 1] == 0)
        --hlit;
    std::size_t hdist = kNumDist;
    while (hdist > 1 && dist_lengths[hdist - 1] == 0)
        --hdist;

    // Concatenate and run-length encode with symbols 16/17/18.
    std::vector<std::uint8_t> all;
    all.insert(all.end(), lit_lengths.begin(),
               lit_lengths.begin() + static_cast<long>(hlit));
    all.insert(all.end(), dist_lengths.begin(),
               dist_lengths.begin() + static_cast<long>(hdist));

    struct ClSym
    {
        std::uint8_t sym;
        std::uint8_t extra_bits;
        std::uint8_t extra_val;
    };
    std::vector<ClSym> cl_stream;
    for (std::size_t i = 0; i < all.size();) {
        const std::uint8_t v = all[i];
        std::size_t run = 1;
        while (i + run < all.size() && all[i + run] == v)
            ++run;
        if (v == 0) {
            std::size_t left = run;
            while (left >= 11) {
                const std::size_t take = std::min<std::size_t>(left, 138);
                cl_stream.push_back(
                    {18, 7, static_cast<std::uint8_t>(take - 11)});
                left -= take;
            }
            while (left >= 3) {
                const std::size_t take = std::min<std::size_t>(left, 10);
                cl_stream.push_back(
                    {17, 3, static_cast<std::uint8_t>(take - 3)});
                left -= take;
            }
            while (left--)
                cl_stream.push_back({0, 0, 0});
        } else {
            cl_stream.push_back({v, 0, 0});
            std::size_t left = run - 1;
            while (left >= 3) {
                const std::size_t take = std::min<std::size_t>(left, 6);
                cl_stream.push_back(
                    {16, 2, static_cast<std::uint8_t>(take - 3)});
                left -= take;
            }
            while (left--)
                cl_stream.push_back({v, 0, 0});
        }
        i += run;
    }

    // Code-length code table.
    std::vector<std::uint64_t> cl_freq(19, 0);
    for (const auto &s : cl_stream)
        ++cl_freq[s.sym];
    const auto cl_lengths = huffmanCodeLengths(cl_freq, 7);
    const auto cl_codes = canonicalCodes(cl_lengths);

    std::size_t hclen = 19;
    while (hclen > 4 && cl_lengths[kClOrder[hclen - 1]] == 0)
        --hclen;

    writer.put(static_cast<std::uint32_t>(hlit - 257), 5);
    writer.put(static_cast<std::uint32_t>(hdist - 1), 5);
    writer.put(static_cast<std::uint32_t>(hclen - 4), 4);
    for (std::size_t i = 0; i < hclen; ++i)
        writer.put(cl_lengths[kClOrder[i]], 3);
    for (const auto &s : cl_stream) {
        const auto &c = cl_codes[s.sym];
        writer.putHuffman(c.code, c.length);
        if (s.extra_bits)
            writer.put(s.extra_val, s.extra_bits);
    }
}

} // namespace

std::vector<std::uint8_t>
deflateEncodeTokens(const std::vector<Lz77Token> &tokens,
                    DeflateStrategy strategy, bool final_block)
{
    SD_ASSERT(strategy != DeflateStrategy::kStored,
              "stored blocks carry bytes, not tokens");
    BitWriter writer;
    writer.put(final_block ? 1 : 0, 1); // BFINAL
    std::vector<std::uint8_t> lit_lengths;
    std::vector<std::uint8_t> dist_lengths;
    if (strategy == DeflateStrategy::kFixed) {
        writer.put(0b01, 2); // BTYPE = fixed
        lit_lengths = fixedLitLenLengths();
        dist_lengths = fixedDistLengths();
    } else {
        writer.put(0b10, 2); // BTYPE = dynamic
        std::vector<std::uint64_t> lit_freq;
        std::vector<std::uint64_t> dist_freq;
        countFrequencies(tokens, lit_freq, dist_freq);
        lit_lengths = huffmanCodeLengths(lit_freq, 15);
        dist_lengths = huffmanCodeLengths(dist_freq, 15);
        // Deflate requires at least one distance code length even when
        // the block has no matches.
        bool any_dist = false;
        for (auto l : dist_lengths)
            any_dist |= l != 0;
        if (!any_dist)
            dist_lengths[0] = 1;
        writeDynamicHeader(writer, lit_lengths, dist_lengths);
    }

    const auto lit_codes = canonicalCodes(lit_lengths);
    const auto dist_codes = canonicalCodes(dist_lengths);
    for (const auto &tok : tokens)
        emitToken(writer, tok, lit_codes, dist_codes);
    const auto &eob = lit_codes[kEndOfBlock];
    writer.putHuffman(eob.code, eob.length);
    return writer.finish();
}

DeflateResult
deflateCompress(const std::uint8_t *data, std::size_t len,
                DeflateStrategy strategy, const Lz77Config &lz)
{
    DeflateResult result;
    if (strategy == DeflateStrategy::kStored) {
        BitWriter writer;
        // Emit stored blocks of at most 65535 bytes.
        std::size_t off = 0;
        do {
            const std::size_t take =
                std::min<std::size_t>(len - off, 65535);
            const bool fin = off + take >= len;
            writer.put(fin ? 1 : 0, 1);
            writer.put(0b00, 2);
            writer.alignByte();
            writer.put(static_cast<std::uint32_t>(take), 16);
            writer.put(static_cast<std::uint32_t>(~take & 0xffff), 16);
            for (std::size_t i = 0; i < take; ++i)
                writer.put(data[off + i], 8);
            off += take;
        } while (off < len);
        result.bytes = writer.finish();
        return result;
    }

    const auto tokens = lz77Compress(data, len, lz, &result.lz_stats);
    result.bytes = deflateEncodeTokens(tokens, strategy);
    return result;
}

std::vector<std::uint8_t>
deflateDecompress(const std::uint8_t *data, std::size_t len)
{
    auto out = deflateTryDecompress(data, len);
    SD_ASSERT(out.has_value(), "malformed DEFLATE stream");
    return std::move(*out);
}

std::optional<std::vector<std::uint8_t>>
deflateTryDecompress(const std::uint8_t *data, std::size_t len,
                     std::size_t max_out)
{
    BitReader reader(data, len);
    std::vector<std::uint8_t> out;

    for (;;) {
        std::uint32_t header;
        if (!reader.tryTake(3, header))
            return std::nullopt;
        const bool final_block = (header & 1) != 0;
        const std::uint32_t btype = header >> 1;

        if (btype == 0b11)
            return std::nullopt; // reserved BTYPE

        if (btype == 0b00) {
            reader.alignByte();
            std::uint32_t n;
            std::uint32_t nlen;
            if (!reader.tryTake(16, n) || !reader.tryTake(16, nlen))
                return std::nullopt;
            if ((n ^ nlen) != 0xffff)
                return std::nullopt;
            if (reader.bitsRemaining() < static_cast<std::size_t>(n) * 8 ||
                out.size() + n > max_out)
                return std::nullopt;
            for (std::uint32_t i = 0; i < n; ++i)
                out.push_back(static_cast<std::uint8_t>(reader.take(8)));
        } else {
            std::vector<std::uint8_t> lit_lengths;
            std::vector<std::uint8_t> dist_lengths;
            if (btype == 0b01) {
                lit_lengths = fixedLitLenLengths();
                dist_lengths = fixedDistLengths();
            } else {
                std::uint32_t raw_hlit;
                std::uint32_t raw_hdist;
                std::uint32_t raw_hclen;
                if (!reader.tryTake(5, raw_hlit) ||
                    !reader.tryTake(5, raw_hdist) ||
                    !reader.tryTake(4, raw_hclen))
                    return std::nullopt;
                const std::size_t hlit = raw_hlit + 257;
                const std::size_t hdist = raw_hdist + 1;
                const std::size_t hclen = raw_hclen + 4;
                if (hlit > kNumLitLen || hdist > kNumDist)
                    return std::nullopt;
                std::vector<std::uint8_t> cl_lengths(19, 0);
                for (std::size_t i = 0; i < hclen; ++i) {
                    std::uint32_t bits;
                    if (!reader.tryTake(3, bits))
                        return std::nullopt;
                    cl_lengths[kClOrder[i]] =
                        static_cast<std::uint8_t>(bits);
                }
                HuffmanDecoder cl_decoder(cl_lengths);

                std::vector<std::uint8_t> all;
                while (all.size() < hlit + hdist) {
                    const auto sym = cl_decoder.tryDecode(reader);
                    if (!sym)
                        return std::nullopt;
                    std::uint32_t n;
                    if (*sym < 16) {
                        all.push_back(static_cast<std::uint8_t>(*sym));
                    } else if (*sym == 16) {
                        if (all.empty() || !reader.tryTake(2, n))
                            return std::nullopt;
                        all.insert(all.end(), 3 + n, all.back());
                    } else if (*sym == 17) {
                        if (!reader.tryTake(3, n))
                            return std::nullopt;
                        all.insert(all.end(), 3 + n, 0);
                    } else {
                        if (!reader.tryTake(7, n))
                            return std::nullopt;
                        all.insert(all.end(), 11 + n, 0);
                    }
                }
                // A repeat run may not spill past the declared counts.
                if (all.size() != hlit + hdist)
                    return std::nullopt;
                lit_lengths.assign(all.begin(),
                                   all.begin() + static_cast<long>(hlit));
                lit_lengths.resize(kNumLitLen, 0);
                dist_lengths.assign(all.begin() + static_cast<long>(hlit),
                                    all.end());
                dist_lengths.resize(kNumDist, 0);
            }

            HuffmanDecoder lit_decoder(lit_lengths);
            HuffmanDecoder dist_decoder(dist_lengths);

            for (;;) {
                const auto sym = lit_decoder.tryDecode(reader);
                if (!sym)
                    return std::nullopt;
                if (*sym == kEndOfBlock)
                    break;
                if (*sym < 256) {
                    if (out.size() >= max_out)
                        return std::nullopt;
                    out.push_back(static_cast<std::uint8_t>(*sym));
                    continue;
                }
                const unsigned lci = *sym - 257;
                if (lci >= 29)
                    return std::nullopt;
                std::uint32_t extra;
                if (!reader.tryTake(kLengthCodes[lci].extra, extra))
                    return std::nullopt;
                const std::size_t match_len =
                    kLengthCodes[lci].base + extra;
                const auto dsym = dist_decoder.tryDecode(reader);
                if (!dsym || *dsym >= 30)
                    return std::nullopt;
                if (!reader.tryTake(kDistCodes[*dsym].extra, extra))
                    return std::nullopt;
                const std::size_t dist = kDistCodes[*dsym].base + extra;
                if (dist > out.size() ||
                    out.size() + match_len > max_out)
                    return std::nullopt;
                const std::size_t start = out.size() - dist;
                for (std::size_t i = 0; i < match_len; ++i)
                    out.push_back(out[start + i]);
            }
        }

        if (final_block)
            break;
    }
    return out;
}

} // namespace sd::compress
