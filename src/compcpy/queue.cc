#include "compcpy/queue.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/log.h"
#include "smartdimm/config.h"
#include "smartdimm/mmio_layout.h"

namespace sd::compcpy {

/**
 * Bound on idle recovery rounds per stuck descriptor. Each round is a
 * kQueueStatus read plus a full event-queue drain; a device that still
 * cannot account for the descriptor afterwards gets a synthesised
 * kBailout record — the reaping mirror of kMaxRecycleAttempts.
 */
constexpr unsigned kMaxRecoveryRounds = 3;

const char *
completionStatusName(CompletionStatus status)
{
    switch (status) {
      case CompletionStatus::kSuccess:
        return "success";
      case CompletionStatus::kDegraded:
        return "degraded";
      case CompletionStatus::kRejected:
        return "rejected";
      case CompletionStatus::kBailout:
        return "bailout";
    }
    return "?";
}

WorkQueue::WorkQueue(CompCpyEngine &engine, const WorkQueueConfig &config)
    : engine_(engine), config_(config),
      occ_hist_(0.0, static_cast<double>(config.depth) + 1.0,
                config.depth + 1)
{
    SD_ASSERT(config_.depth > 0 && config_.max_inflight > 0,
              "work queue needs a nonzero depth and inflight window");
    SD_ASSERT(config_.id < smartdimm::kMaxDeviceQueues,
              "queue id outside the device's kQueueStatus window");
}

WorkQueue::~WorkQueue() = default;

bool
WorkQueue::injectFault(fault::Site site)
{
    fault::FaultPlan *plan = engine_.faultPlan();
    return plan && plan->armed(site) &&
           plan->shouldInject(site, engine_.faultScope());
}

std::size_t
WorkQueue::occupancy() const
{
    return order_.size();
}

std::optional<std::uint64_t>
WorkQueue::submit(const Descriptor &desc, std::uint16_t submitter,
                  CompletionCallback on_complete)
{
    owner_.check();
    SD_ASSERT(!desc.ops.empty(), "empty descriptor");

    // Dedicated-mode arbitration: the queue binds to its first
    // accepted submitter; anyone else is turned away at the door.
    if (config_.mode == QueueMode::kDedicated && owner_submitter_ &&
        *owner_submitter_ != submitter) {
        ++stats_.rejected_submitter;
        return std::nullopt;
    }

    // Backpressure: a genuinely full ring, or an injected kQueueFull
    // (a stuck/lying not-ready signal). The fault plan is consulted
    // only when the queue has room, so every injection maps to
    // exactly one rejected submit — the soak conservation invariant.
    const bool genuinely_full = occupancy() >= config_.depth;
    const bool injected_full =
        !genuinely_full && injectFault(fault::Site::kQueueFull);
    if (genuinely_full || injected_full) {
        ++stats_.rejected_full;
        if (injected_full)
            SD_TRACE_FAULT_EVENT(desc.ops[0].dbuf / kPageSize,
                                 engine_.memory().events().now(),
                                 desc.ops[0].dbuf);
        return std::nullopt;
    }

    return accept(desc, submitter, std::move(on_complete));
}

std::uint64_t
WorkQueue::submitForce(const Descriptor &desc, std::uint16_t submitter,
                       CompletionCallback on_complete)
{
    owner_.check();
    SD_ASSERT(!desc.ops.empty(), "empty descriptor");
    return accept(desc, submitter, std::move(on_complete));
}

std::uint64_t
WorkQueue::accept(const Descriptor &desc, std::uint16_t submitter,
                  CompletionCallback on_complete)
{
    if (config_.mode == QueueMode::kDedicated && !owner_submitter_)
        owner_submitter_ = submitter;

    const Tick now = engine_.memory().events().now();
    auto p = std::make_shared<Pending>();
    p->id = next_id_++;
    p->desc = desc;
    p->submitter = submitter;
    p->on_complete = std::move(on_complete);
    p->submitted = now;

    // Open one span per op at submit time, so the span covers the full
    // submit→complete window and device-side events attribute through
    // the page bindings from the moment the descriptor is accepted.
    auto &tr = trace::tracer();
    p->spans.reserve(p->desc.ops.size());
    for (const auto &op : p->desc.ops) {
        std::uint32_t span = 0;
        if (tr.enabled()) {
            // Per-device span naming: an engine placed in a topology
            // tags its spans ("tls.ch1.d0") so multi-DIMM traces never
            // aggregate devices under one name. Untagged engines keep
            // the legacy names (1x1 goldens are byte-identical).
            span = tr.beginSpan(engine_.spanName(op.ulp), op.sbuf,
                                op.dbuf, op.size, now);
            const std::size_t src_pages = divCeil(op.size, kPageSize);
            const std::size_t dst_pages = CompCpyEngine::destPages(op);
            for (std::size_t pg = 0; pg < src_pages; ++pg)
                tr.bindPage(op.sbuf / kPageSize + pg, span);
            for (std::size_t pg = 0; pg < dst_pages; ++pg)
                tr.bindPage(op.dbuf / kPageSize + pg, span);
        }
        SD_TRACE_EVENT(span, trace::Stage::kSubmit, now, op.dbuf);
        p->spans.push_back(span);
    }

    ++stats_.submitted;
    stats_.submitted_ops += p->desc.ops.size();
    if (p->desc.ops.size() > 1)
        ++stats_.batches;
    occupancy_.add();
    occ_hist_.sample(static_cast<double>(occupancy_.value()));

    order_.push_back(p);
    dispatch_.push_back(p);
    if (config_.signal == CompletionSignal::kWithheldResponse)
        ++stats_.withheld_reads; // one held read per descriptor
    ringDoorbell(p);
    return p->id;
}

void
WorkQueue::ringDoorbell(const std::shared_ptr<Pending> &p)
{
    // The device must see the submission before the host dispatches:
    // its per-queue submitted/completed counts (kQueueStatus) are the
    // ground truth lost-completion recovery diffs against.
    smartdimm::QueueDoorbell db;
    db.queue = config_.id;
    db.submitter = p->submitter;
    db.ops = static_cast<std::uint32_t>(p->desc.ops.size());
    db.seq = p->id;
    auto burst =
        std::make_shared<std::array<std::uint8_t, kCacheLineSize>>();
    db.pack(burst->data());
    ++stats_.doorbells;
    engine_.memory().mmioWrite(
        engine_.driver().mmio(smartdimm::MmioReg::kQueueDoorbell),
        burst->data(), [this, p, burst](Tick) {
            p->doorbell_landed = true;
            tryDispatch();
        });
}

void
WorkQueue::tryDispatch()
{
    // Strict FIFO per queue: ops start in descriptor submission order
    // (and in op order within a batch), gated by the inflight window.
    while (inflight_ops_ < config_.max_inflight && !dispatch_.empty()) {
        auto p = dispatch_.front();
        if (p->recorded) { // force-bailed while queued
            dispatch_.pop_front();
            continue;
        }
        if (!p->doorbell_landed)
            return;
        if (p->ops_started == 0)
            p->dispatched = engine_.memory().events().now();
        const std::size_t i = p->ops_started++;
        if (p->ops_started == p->desc.ops.size())
            dispatch_.pop_front();
        ++inflight_ops_;
        engine_.startOp(p->desc.ops[i], p->spans[i],
                        [this, p](const OpOutcome &outcome) {
                            opDone(p, outcome);
                        });
    }
}

void
WorkQueue::opDone(const std::shared_ptr<Pending> &p,
                  const OpOutcome &outcome)
{
    --inflight_ops_;
    p->degraded |= outcome.degraded;
    p->rejected |= outcome.rejected;
    p->bailout |= outcome.bailout;
    if (++p->ops_done == p->desc.ops.size())
        descriptorExecuted(p);
    tryDispatch();
}

CompletionStatus
WorkQueue::statusOf(const Pending &p) const
{
    // Severity order: a rejected registration left plain-DRAM bytes in
    // the destination, degraded reads returned raw data, a bailout
    // alone means a bounded loop gave up but the data is intact.
    if (p.rejected)
        return CompletionStatus::kRejected;
    if (p.degraded)
        return CompletionStatus::kDegraded;
    if (p.bailout)
        return CompletionStatus::kBailout;
    return CompletionStatus::kSuccess;
}

void
WorkQueue::descriptorExecuted(const std::shared_ptr<Pending> &p)
{
    p->executed = true;
    if (p->recorded)
        return; // a bounded-recovery bailout already closed it

    // Completion protocol: ack the device first (always lands), then
    // write the host-visible record — the lossy step kLostCompletion
    // models dropping.
    smartdimm::QueueCompletion qc;
    qc.queue = config_.id;
    qc.status = static_cast<std::uint16_t>(statusOf(*p));
    qc.ops = static_cast<std::uint32_t>(p->desc.ops.size());
    qc.seq = p->id;
    auto burst =
        std::make_shared<std::array<std::uint8_t, kCacheLineSize>>();
    qc.pack(burst->data());
    engine_.memory().mmioWrite(
        engine_.driver().mmio(smartdimm::MmioReg::kQueueComplete),
        burst->data(), [this, p, burst](Tick) {
            if (p->recorded)
                return;
            if (config_.signal == CompletionSignal::kWithheldResponse) {
                // The CXL controller releases the read response it has
                // been holding since submit: delivery IS the record,
                // so there is no lossy host write and no polling. The
                // failure mode is the response itself timing out.
                if (injectFault(fault::Site::kCxlTimeout)) {
                    ++stats_.withheld_timeouts;
                    // The offload DID run, but the host cannot trust a
                    // completion it never saw — the synthesised record
                    // comes back degraded and the dispatcher falls
                    // back to the CPU/local path for the flow.
                    p->degraded = true;
                    SD_TRACE_FAULT_EVENT(
                        p->desc.ops[0].dbuf / kPageSize,
                        engine_.memory().events().now(),
                        p->desc.ops[0].dbuf);
                    return; // poll-timeout recovery synthesises it
                }
                const Tick waited =
                    engine_.memory().events().now() - p->submitted;
                const std::uint64_t saved =
                    1 + waited / std::max<Tick>(1, config_.poll_interval);
                stats_.polls_saved += saved;
                stats_.poll_bytes_saved += saved * kCacheLineSize;
                ++stats_.withheld_completions;
                writeRecord(p, /*recovered=*/false);
                return;
            }
            if (injectFault(fault::Site::kLostCompletion)) {
                ++stats_.lost_records;
                SD_TRACE_FAULT_EVENT(p->desc.ops[0].dbuf / kPageSize,
                                     engine_.memory().events().now(),
                                     p->desc.ops[0].dbuf);
                return; // poll-timeout recovery synthesises it
            }
            writeRecord(p, /*recovered=*/false);
        });
}

void
WorkQueue::writeRecord(const std::shared_ptr<Pending> &p, bool recovered)
{
    SD_ASSERT(!p->recorded, "descriptor completion-recorded twice");
    p->recorded = true;
    const Tick now = engine_.memory().events().now();

    CompletionRecord rec;
    rec.id = p->id;
    rec.queue = config_.id;
    rec.submitter = p->submitter;
    rec.status = statusOf(*p);
    rec.recovered = recovered;
    rec.ops = static_cast<std::uint32_t>(p->desc.ops.size());
    rec.submitted = p->submitted;
    rec.dispatched = p->dispatched;
    rec.completed = now;

    ++stats_.completions;
    if (recovered)
        ++stats_.recovered_records;
    switch (rec.status) {
      case CompletionStatus::kDegraded:
        ++stats_.degraded;
        break;
      case CompletionStatus::kRejected:
        ++stats_.rejected;
        break;
      case CompletionStatus::kBailout:
        ++stats_.bailouts;
        break;
      case CompletionStatus::kSuccess:
        break;
    }
    latency_.sample(now - p->submitted);
    occupancy_.sub();
    for (auto it = order_.begin(); it != order_.end(); ++it) {
        if ((*it)->id == p->id) {
            order_.erase(it);
            break;
        }
    }

    // Raw endSpan (not SD_SPAN_END): these spans opened asynchronously
    // at submit time, so begin/end do not balance within one function.
    for (std::size_t i = 0; i < p->spans.size(); ++i) {
        SD_TRACE_EVENT(p->spans[i], trace::Stage::kComplete, now,
                       p->desc.ops[i].dbuf);
        trace::tracer().endSpan(p->spans[i], now);
    }

    if (p->on_complete)
        p->on_complete(rec); // an always-polling client: reaped now
    else
        ready_.push_back(rec);
}

void
WorkQueue::recoverLost()
{
    if (recovery_inflight_)
        return;
    recovery_inflight_ = true;
    ++stats_.recovery_polls;
    auto reg =
        std::make_shared<std::array<std::uint8_t, kCacheLineSize>>();
    engine_.memory().mmioRead(
        engine_.driver().mmio(smartdimm::MmioReg::kQueueStatus),
        reg->data(), [this, reg](Tick) {
            recovery_inflight_ = false;
            std::uint64_t words[8];
            std::memcpy(words, reg->data(), sizeof(words));
            if (config_.id >= words[0])
                return;
            const auto dev_completed = static_cast<std::uint32_t>(
                words[1 + config_.id] & 0xFFFF'FFFFu);
            // Descriptors the device acked but the host never
            // recorded are exactly the dropped records; the oldest
            // executed-but-unrecorded entries are those.
            std::uint64_t deficit =
                dev_completed > stats_.completions
                    ? dev_completed - stats_.completions
                    : 0;
            std::vector<std::shared_ptr<Pending>> victims;
            for (const auto &p : order_) {
                if (victims.size() >= deficit)
                    break;
                if (p->executed && !p->recorded)
                    victims.push_back(p);
            }
            for (const auto &p : victims)
                writeRecord(p, /*recovered=*/true);
        });
}

void
WorkQueue::forceBailout(const std::shared_ptr<Pending> &p)
{
    p->bailout = true;
    writeRecord(p, /*recovered=*/true);
}

std::vector<CompletionRecord>
WorkQueue::poll()
{
    owner_.check();
    // Poll-timeout check: an executed descriptor whose record has not
    // landed within the timeout means the record dropped — start a
    // recovery poll (the reaped records below are unaffected).
    const Tick now = engine_.memory().events().now();
    for (const auto &p : order_) {
        if (p->executed && !p->recorded &&
            now - p->submitted >= config_.poll_timeout) {
            recoverLost();
            break;
        }
    }
    std::vector<CompletionRecord> out;
    out.swap(ready_);
    stats_.reaped += out.size();
    return out;
}

CompletionRecord
WorkQueue::wait(std::uint64_t id)
{
    owner_.check();
    unsigned stale = 0;
    for (;;) {
        for (auto it = ready_.begin(); it != ready_.end(); ++it) {
            if (it->id != id)
                continue;
            CompletionRecord rec = *it;
            ready_.erase(it);
            ++stats_.reaped;
            return rec;
        }
        std::shared_ptr<Pending> target;
        for (const auto &p : order_) {
            if (p->id == id) {
                target = p;
                break;
            }
        }
        SD_ASSERT(target != nullptr,
                  "wait() on an unknown or callback-consumed descriptor");
        const std::uint64_t before = stats_.completions;
        engine_.memory().events().run();
        if (stats_.completions != before)
            continue; // progress: re-check the record array
        // Idle with the record missing: the completion dropped.
        if (stale++ >= kMaxRecoveryRounds) {
            forceBailout(target);
            continue;
        }
        recoverLost();
        engine_.memory().events().run();
    }
}

void
WorkQueue::drain()
{
    owner_.check();
    unsigned stale = 0;
    while (!order_.empty()) {
        const std::uint64_t before = stats_.completions;
        engine_.memory().events().run();
        if (order_.empty())
            break;
        if (stats_.completions != before) {
            stale = 0;
            continue;
        }
        if (stale++ >= kMaxRecoveryRounds) {
            forceBailout(order_.front());
            continue;
        }
        recoverLost();
        engine_.memory().events().run();
    }
}

void
WorkQueue::reportStats(trace::StatsBlock &block) const
{
    block.scalar("submitted", static_cast<double>(stats_.submitted));
    block.scalar("submitted_ops",
                 static_cast<double>(stats_.submitted_ops));
    block.scalar("batches", static_cast<double>(stats_.batches));
    block.scalar("rejected_full",
                 static_cast<double>(stats_.rejected_full));
    block.scalar("rejected_submitter",
                 static_cast<double>(stats_.rejected_submitter));
    block.scalar("completions", static_cast<double>(stats_.completions));
    block.scalar("degraded", static_cast<double>(stats_.degraded));
    block.scalar("rejected", static_cast<double>(stats_.rejected));
    block.scalar("bailouts", static_cast<double>(stats_.bailouts));
    block.scalar("reaped", static_cast<double>(stats_.reaped));
    block.scalar("lost_records",
                 static_cast<double>(stats_.lost_records));
    block.scalar("recovered_records",
                 static_cast<double>(stats_.recovered_records));
    block.scalar("recovery_polls",
                 static_cast<double>(stats_.recovery_polls));
    block.scalar("doorbells", static_cast<double>(stats_.doorbells));
    block.scalar("withheld_reads",
                 static_cast<double>(stats_.withheld_reads));
    block.scalar("withheld_completions",
                 static_cast<double>(stats_.withheld_completions));
    block.scalar("withheld_timeouts",
                 static_cast<double>(stats_.withheld_timeouts));
    block.scalar("polls_saved",
                 static_cast<double>(stats_.polls_saved));
    block.scalar("poll_bytes_saved",
                 static_cast<double>(stats_.poll_bytes_saved));
    block.scalar("occupancy", static_cast<double>(occupancy_.value()));
    block.scalar("peak_occupancy",
                 static_cast<double>(occupancy_.peak()));
    block.hist("occupancy_at_submit", occ_hist_);
    block.hist("completion_latency_ticks", latency_);
}

} // namespace sd::compcpy
