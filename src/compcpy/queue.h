/**
 * @file
 * DSA-style descriptor/work-queue front end for the CompCpy engine.
 *
 * Mirroring the work-queue model of Intel's Data Streaming
 * Accelerator (the accelerator SmartDIMM's offload interface is
 * patterned on), software submits `Descriptor`s — one op, or a batch
 * packing N small messages — into a `WorkQueue`, rings a per-queue
 * MMIO doorbell, and reaps `CompletionRecord`s by polling. A queue is
 * *dedicated* (bound to the first submitter; foreign submissions are
 * rejected, like a DWQ reserved for one client) or *shared* (any
 * submitter; entries arbitrate by submission order, like an ENQCMD
 * SWQ). Dispatch is strictly FIFO per queue with at most
 * `max_inflight` ops executing concurrently, which is what lets one
 * core keep many offloads in flight on the single simulated channel.
 *
 * Completion protocol: when every op of a descriptor finishes, the
 * engine-side of the queue writes the device's kQueueComplete MMIO
 * register (the device increments its per-queue completed count —
 * this always lands), then writes the host-visible completion record.
 * The record write is the lossy step: the kLostCompletion fault site
 * drops it, and poll-timeout recovery re-derives the loss by reading
 * kQueueStatus and diffing the device count against host records,
 * then synthesises the missing records (flagged `recovered`). Bounded
 * recovery that still cannot account for a descriptor yields a
 * kBailout record — the zero-panic contract of the fault layer.
 *
 * The synchronous CompCpyEngine::run()/start() API is a facade over
 * an internal WorkQueue (submit-then-poll), so every op in the
 * simulator — sync or async — executes through this one path.
 *
 * Concurrency contract: a WorkQueue belongs to one simulated system
 * and is single-owner like the EventQueue that drives it; the
 * SingleOwnerChecker spot-checks that at runtime. "Multiple
 * submitters" are logical submitter ids within the owning thread, not
 * OS threads.
 */

#ifndef SD_COMPCPY_QUEUE_H
#define SD_COMPCPY_QUEUE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "compcpy/compcpy.h"

namespace sd::compcpy {

/** DSA-style queue client models. */
enum class QueueMode : std::uint8_t
{
    kDedicated = 0, ///< bound to the first submitter (DWQ)
    kShared,        ///< any submitter, arbitration by submit order (SWQ)
};

/**
 * How a completion reaches the host. kPollRecord is the DSA model:
 * the device writes a host-visible record the client polls for (the
 * write may drop — kLostCompletion). kWithheldResponse is the CXL.mem
 * far-tier model: the host issues one read of the completion register
 * and the CXL controller *withholds the response* until the offload
 * finishes, so delivery of the read response IS the completion — no
 * polling, no lossy record write. The polls the host would have
 * issued while waiting are tallied as saved traffic. The failure mode
 * shifts accordingly: kCxlTimeout drops the withheld response, and the
 * existing poll-timeout recovery synthesises the record (degraded).
 */
enum class CompletionSignal : std::uint8_t
{
    kPollRecord = 0,   ///< record array + host polling (local DSA)
    kWithheldResponse, ///< CXL controller holds the read open
};

/** Final status of a descriptor, mirroring the PR 5 fault outcomes. */
enum class CompletionStatus : std::uint8_t
{
    kSuccess = 0,
    kDegraded, ///< ALERT_N-exhausted reads degraded at least one op
    kRejected, ///< the device rejected at least one page registration
    kBailout,  ///< a bounded recovery loop gave up (recycle or reap)
};

/** Stable short name (test output and stats dumps). */
const char *completionStatusName(CompletionStatus status);

/**
 * One work-queue entry: a single CompCpy op, or a batch descriptor
 * packing several small messages that fan out to ops and fan back in
 * to one completion record.
 */
struct Descriptor
{
    std::vector<CompCpyParams> ops;

    static Descriptor
    single(const CompCpyParams &params)
    {
        Descriptor d;
        d.ops.push_back(params);
        return d;
    }

    static Descriptor
    batch(std::vector<CompCpyParams> ops)
    {
        Descriptor d;
        d.ops = std::move(ops);
        return d;
    }
};

/** One entry of the completion-record array, reaped via poll(). */
struct CompletionRecord
{
    std::uint64_t id = 0;        ///< descriptor id (per-queue, from 1)
    std::uint16_t queue = 0;     ///< owning queue id
    std::uint16_t submitter = 0; ///< logical submitter that enqueued it
    CompletionStatus status = CompletionStatus::kSuccess;
    bool recovered = false; ///< synthesised by poll-timeout recovery
    std::uint32_t ops = 0;  ///< ops the descriptor packed
    Tick submitted = 0;     ///< accepted into the queue
    Tick dispatched = 0;    ///< first op started executing
    Tick completed = 0;     ///< record written (or recovered)
};

/** Geometry and policy of one work queue. */
struct WorkQueueConfig
{
    std::uint16_t id = 0; ///< < smartdimm::kMaxDeviceQueues
    QueueMode mode = QueueMode::kDedicated;
    std::size_t depth = 16;        ///< max unrecorded descriptors
    std::size_t max_inflight = 8;  ///< ops executing concurrently
    /** Outstanding-descriptor age that arms poll-timeout recovery. */
    Tick poll_timeout = 100'000'000; // 100 us
    /** Completion delivery model (see CompletionSignal). */
    CompletionSignal signal = CompletionSignal::kPollRecord;
    /**
     * Modelled host poll cadence while a descriptor is outstanding —
     * the withheld-response mode uses it to count the polls (and their
     * MMIO read traffic) the far tier saved.
     */
    Tick poll_interval = 2'000'000; // 2 us
};

/** Outcome counters for one work queue. */
struct WorkQueueStats
{
    std::uint64_t submitted = 0;     ///< descriptors accepted
    std::uint64_t submitted_ops = 0; ///< ops across accepted descriptors
    std::uint64_t batches = 0;       ///< descriptors packing > 1 op
    std::uint64_t rejected_full = 0; ///< backpressured submits
    std::uint64_t rejected_submitter = 0; ///< dedicated-mode foreigners
    std::uint64_t completions = 0;   ///< records written (incl. recovered)
    std::uint64_t degraded = 0;      ///< records with kDegraded
    std::uint64_t rejected = 0;      ///< records with kRejected
    std::uint64_t bailouts = 0;      ///< records with kBailout
    std::uint64_t reaped = 0;        ///< records handed to poll()/wait()
    std::uint64_t lost_records = 0;  ///< injected completion drops
    std::uint64_t recovered_records = 0; ///< synthesised by recovery
    std::uint64_t recovery_polls = 0;    ///< kQueueStatus reads issued
    std::uint64_t doorbells = 0;     ///< kQueueDoorbell writes issued
    std::uint64_t withheld_reads = 0; ///< held completion reads issued
    std::uint64_t withheld_completions = 0; ///< responses delivered
    std::uint64_t withheld_timeouts = 0; ///< injected response drops
    std::uint64_t polls_saved = 0;   ///< polls the held read replaced
    std::uint64_t poll_bytes_saved = 0; ///< MMIO bytes those polls cost
};

/**
 * The submission/completion ring. All entry points are single-owner
 * (see the file comment); submit() and the reaping calls may be
 * interleaved freely from event-queue callbacks of the owning thread.
 */
class WorkQueue
{
  public:
    using CompletionCallback =
        std::function<void(const CompletionRecord &)>;

    explicit WorkQueue(CompCpyEngine &engine,
                       const WorkQueueConfig &config = {});
    ~WorkQueue();

    WorkQueue(const WorkQueue &) = delete;
    WorkQueue &operator=(const WorkQueue &) = delete;

    /**
     * Enqueue @p desc. @return the descriptor id, or nullopt when the
     * queue backpressures (occupancy at depth, an injected kQueueFull,
     * or a dedicated queue refusing a foreign @p submitter). With an
     * @p on_complete callback the record is consumed by the callback
     * the moment it is written (an always-polling client); without
     * one it lands in the completion-record array for poll()/wait().
     */
    std::optional<std::uint64_t>
    submit(const Descriptor &desc, std::uint16_t submitter = 0,
           CompletionCallback on_complete = nullptr);

    /**
     * submit() that skips the occupancy/fault backpressure checks —
     * the bounded-retry escape hatch of the sync facade, mirroring
     * the Force-Recycle bailout (a stuck "queue full" signal must not
     * wedge a synchronous caller forever).
     */
    std::uint64_t submitForce(const Descriptor &desc,
                              std::uint16_t submitter = 0,
                              CompletionCallback on_complete = nullptr);

    /**
     * Reap every completion record written so far (does not pump the
     * event queue). Also checks outstanding descriptors against the
     * poll timeout and starts lost-completion recovery when one aged
     * out.
     */
    std::vector<CompletionRecord> poll();

    /**
     * Drive the event queue until descriptor @p id's record is reaped
     * and return it. Runs lost-completion recovery when the
     * simulation idles with the record still missing; after bounded
     * recovery rounds the record is synthesised with kBailout.
     */
    CompletionRecord wait(std::uint64_t id);

    /** wait() for everything outstanding (records stay reapable). */
    void drain();

    /** Descriptors accepted but not yet completion-recorded. */
    std::size_t occupancy() const;

    /** Ops currently executing in the engine. */
    std::size_t inflight() const { return inflight_ops_; }

    const WorkQueueConfig &config() const { return config_; }
    const WorkQueueStats &stats() const { return stats_; }

    /** submit→record latency distribution (ticks). */
    const LogHistogram &completionLatency() const { return latency_; }

    /** Occupancy level at each accepted submit (depth utilisation). */
    const Histogram &occupancyHistogram() const { return occ_hist_; }

    /** Peak unrecorded-descriptor occupancy. */
    std::int64_t peakOccupancy() const { return occupancy_.peak(); }

    /** Contribute queue counters to a stats dump. */
    void reportStats(trace::StatsBlock &block) const;

  private:
    /** Lifecycle state of one accepted descriptor. */
    struct Pending
    {
        std::uint64_t id = 0;
        Descriptor desc;
        std::uint16_t submitter = 0;
        CompletionCallback on_complete;
        std::vector<std::uint32_t> spans; ///< one per op (0 untraced)
        Tick submitted = 0;
        Tick dispatched = 0;
        bool doorbell_landed = false; ///< device saw the submission
        std::size_t ops_started = 0;
        std::size_t ops_done = 0;
        bool degraded = false;
        bool rejected = false;
        bool bailout = false;
        bool executed = false; ///< every op finished in the engine
        bool recorded = false; ///< completion record written
    };

    bool injectFault(fault::Site site);
    std::uint64_t accept(const Descriptor &desc, std::uint16_t submitter,
                         CompletionCallback on_complete);
    void ringDoorbell(const std::shared_ptr<Pending> &p);
    void tryDispatch();
    void opDone(const std::shared_ptr<Pending> &p,
                const OpOutcome &outcome);
    void descriptorExecuted(const std::shared_ptr<Pending> &p);
    void writeRecord(const std::shared_ptr<Pending> &p, bool recovered);
    CompletionStatus statusOf(const Pending &p) const;
    /** Issue one kQueueStatus read and synthesise missing records. */
    void recoverLost();
    /** Give up on @p p after bounded recovery: kBailout record. */
    void forceBailout(const std::shared_ptr<Pending> &p);

    CompCpyEngine &engine_;
    WorkQueueConfig config_;
    /** Bound owner of a dedicated queue (first accepted submitter). */
    std::optional<std::uint16_t> owner_submitter_;
    std::uint64_t next_id_ = 1;
    /** Unrecorded descriptors in submission order (recovery reaps the
     *  oldest executed-but-unrecorded entries first). */
    std::deque<std::shared_ptr<Pending>> order_;
    /** Accepted descriptors with ops still to start, FIFO. */
    std::deque<std::shared_ptr<Pending>> dispatch_;
    /** The completion-record array, reaped by poll()/wait(). */
    std::vector<CompletionRecord> ready_;
    std::size_t inflight_ops_ = 0;
    bool recovery_inflight_ = false;
    WorkQueueStats stats_;
    Gauge occupancy_;
    Histogram occ_hist_;
    LogHistogram latency_;
    /** Single-owner contract spot check (see thread_annotations.h). */
    SingleOwnerChecker owner_;
};

} // namespace sd::compcpy

#endif // SD_COMPCPY_QUEUE_H
