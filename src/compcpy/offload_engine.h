/**
 * @file
 * OpenSSL-engine analogue (Fig. 8): protects TLS records either on
 * the CPU (software AES-GCM) or through SmartDIMM via CompCpy,
 * steered by the LLC contention probe. Also hosts the equivalent
 * Deflate entry point used by the compression module.
 */

#ifndef SD_COMPCPY_OFFLOAD_ENGINE_H
#define SD_COMPCPY_OFFLOAD_ENGINE_H

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "compcpy/adaptive.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "compcpy/queue.h"
#include "compress/deflate.h"
#include "crypto/tls_record.h"

namespace sd::compcpy {

/** Where a record actually got processed. */
enum class ProcessedOn : std::uint8_t
{
    kCpu,
    kSmartDimm,
};

/** One protected record plus provenance. */
struct EngineRecord
{
    std::vector<std::uint8_t> body; ///< ciphertext || tag
    ProcessedOn on = ProcessedOn::kCpu;
};

/**
 * The adaptive TLS engine. Owns SmartDIMM-side staging buffers via
 * the driver and keeps per-connection key material like the OpenSSL
 * cipher context would.
 */
class AdaptiveTlsEngine
{
  public:
    AdaptiveTlsEngine(cache::MemorySystem &memory, Driver &driver,
                      CompCpyEngine::SharedState &shared,
                      const std::uint8_t key[16],
                      const crypto::GcmIv &static_iv,
                      const AdaptiveConfig &adaptive = {});

    /**
     * Protect @p len plaintext bytes as one record body
     * (ciphertext || tag), on CPU or SmartDIMM per the probe.
     * Equivalent to a one-record protectRecords() batch.
     * @param force optional override of the adaptive decision
     */
    EngineRecord protectRecord(const std::uint8_t *plain, std::size_t len,
                               std::optional<ProcessedOn> force = {});

    /**
     * Protect a batch of records through the engine's dedicated work
     * queue: one placement decision for the whole batch, one batch
     * descriptor fanned out to per-record ops, one completion record
     * fanned back in. CPU fallback is *per queue*, not per call — a
     * non-success completion record notes degradation on the probe
     * once per reaped batch, so the next batch routes to the CPU
     * while the probe re-learns.
     * @param force optional override of the adaptive decision
     */
    std::vector<EngineRecord> protectRecords(
        const std::vector<std::pair<const std::uint8_t *, std::size_t>>
            &plains,
        std::optional<ProcessedOn> force = {});

    /** Probe access (callers sample it at their request cadence). */
    LlcContentionProbe &probe() { return probe_; }

    /** The dedicated work queue batches offload through. */
    WorkQueue &queue() { return queue_; }

    const CompCpyStats &compcpyStats() const { return compcpy_.stats(); }
    std::uint64_t cpuRecords() const { return cpu_records_; }
    std::uint64_t offloadedRecords() const { return offloaded_records_; }

    /**
     * Register "<prefix>engine", "<prefix>probe" and
     * "<prefix>compcpy" providers into @p registry. Providers
     * reference this object — remove them (or drop the registry)
     * before destroying it.
     */
    void registerStats(trace::StatsRegistry &registry,
                       const std::string &prefix = "") const;

  private:
    /** Work-queue geometry of the engine's dedicated queue. */
    static WorkQueueConfig queueConfig();

    cache::MemorySystem &memory_;
    Driver &driver_;
    CompCpyEngine compcpy_;
    WorkQueue queue_;
    LlcContentionProbe probe_;
    std::uint8_t key_[16];
    crypto::GcmIv static_iv_;
    std::uint64_t seq_ = 0;
    std::uint64_t next_message_id_ = 1;
    std::uint64_t cpu_records_ = 0;
    std::uint64_t offloaded_records_ = 0;
};

} // namespace sd::compcpy

#endif // SD_COMPCPY_OFFLOAD_ENGINE_H
