/**
 * @file
 * SmartDIMM kernel-driver analogue (Sec. V-C): owns the SmartDIMM
 * physical address window, hands out page-aligned buffer ranges to
 * userspace (the CompCpy engine), and exposes the MMIO register
 * addresses. In a real deployment the OS memory manager would own
 * this range; the prototype's manual allocator matches the paper.
 */

#ifndef SD_COMPCPY_DRIVER_H
#define SD_COMPCPY_DRIVER_H

#include <cstdint>
#include <map>

#include "common/log.h"
#include "common/types.h"
#include "smartdimm/config.h"

namespace sd::compcpy {

/** Page-granular allocator over the SmartDIMM address window. */
class Driver
{
  public:
    /**
     * @param base first byte of the SmartDIMM-backed physical range
     * @param bytes size of the range handed to this driver
     * @param config device config (for MMIO addresses)
     */
    Driver(Addr base, std::size_t bytes,
           const smartdimm::SmartDimmConfig &config = {})
        : base_(base), bytes_(bytes), config_(config), next_(base)
    {
        SD_ASSERT(isPageAligned(base), "driver range must be page aligned");
    }

    /** Allocate @p bytes rounded up to pages. Never returns 0. */
    Addr
    alloc(std::size_t bytes)
    {
        const std::size_t need = divCeil(bytes, kPageSize) * kPageSize;
        // First fit from the free list, else bump.
        for (auto it = free_.begin(); it != free_.end(); ++it) {
            if (it->second >= need) {
                const Addr addr = it->first;
                const std::size_t left = it->second - need;
                free_.erase(it);
                if (left > 0)
                    free_[addr + need] = left;
                return addr;
            }
        }
        SD_ASSERT(next_ + need <= base_ + bytes_,
                  "SmartDIMM address window exhausted");
        const Addr addr = next_;
        next_ += need;
        return addr;
    }

    /** Return a range to the pool. */
    void
    release(Addr addr, std::size_t bytes)
    {
        free_[addr] = divCeil(bytes, kPageSize) * kPageSize;
    }

    /** MMIO register physical address. */
    Addr
    mmio(smartdimm::MmioReg reg) const
    {
        return config_.mmio_base + static_cast<Addr>(reg);
    }

    const smartdimm::SmartDimmConfig &config() const { return config_; }

  private:
    Addr base_;
    std::size_t bytes_;
    smartdimm::SmartDimmConfig config_;
    Addr next_;
    std::map<Addr, std::size_t> free_;
};

} // namespace sd::compcpy

#endif // SD_COMPCPY_DRIVER_H
