#include "compcpy/compcpy.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>

#include "common/log.h"
#include "compcpy/queue.h"
#include "crypto/tls_record.h"
#include "smartdimm/deflate_dsa.h"

namespace sd::compcpy {

/**
 * Bound on consecutive Force-Recycle rounds per call. A device whose
 * freePages register keeps reading zero while nothing is pending (a
 * stuck or lying register) would otherwise spin this loop forever;
 * past the bound the engine proceeds optimistically — a genuinely
 * full scratchpad then rejects the registration gracefully.
 */
constexpr unsigned kMaxRecycleAttempts = 8;

/**
 * Bound on sync-facade submit retries against an injected kQueueFull.
 * Each retry pumps the event queue (draining real occupancy); past
 * the bound the facade force-submits — a lying "queue full" signal
 * must not wedge a synchronous caller, mirroring the recycle bailout.
 */
constexpr unsigned kMaxSubmitRetries = 8;

/** Continuation state of one in-flight CompCpy. */
struct CompCpyEngine::Flow
{
    CompCpyParams params;
    std::function<void(const OpOutcome &)> on_done;
    std::size_t src_pages = 0;
    std::size_t dst_pages = 0;
    std::size_t cursor = 0;      ///< line/page progress in each stage
    std::size_t outstanding = 0; ///< fan-out joins
    std::vector<std::uint8_t> line; ///< 64 B staging for the copy loop
    std::uint32_t span = 0;      ///< trace span id (0 = untraced)
    Tick begin = 0;              ///< start() tick for call latency
    std::uint64_t degraded_base = 0; ///< degradedReads() at start
    unsigned recycle_attempts = 0;   ///< Force-Recycle rounds so far
    bool bailed = false;             ///< recycle loop hit its bound

    Flow() : line(kCacheLineSize) {}
};

CompCpyEngine::CompCpyEngine(cache::MemorySystem &memory, Driver &driver,
                             SharedState &shared)
    : memory_(memory), driver_(driver), shared_(shared)
{
}

CompCpyEngine::~CompCpyEngine() = default;

bool
CompCpyEngine::injectFault(fault::Site site)
{
    return fault_plan_ && fault_plan_->armed(site) &&
           fault_plan_->shouldInject(site, fault_scope_);
}

std::size_t
CompCpyEngine::destPages(const CompCpyParams &params)
{
    if (params.ulp == smartdimm::UlpKind::kTlsEncrypt)
        return divCeil(params.size + crypto::kTlsTagSize, kPageSize);
    return divCeil(params.size, kPageSize);
}

WorkQueue &
CompCpyEngine::syncQueue()
{
    if (!sync_queue_) {
        WorkQueueConfig cfg;
        cfg.id = 0;
        cfg.mode = QueueMode::kShared; // the facade serves any caller
        cfg.depth = 64;
        cfg.max_inflight = 64;
        sync_queue_ = std::make_unique<WorkQueue>(*this, cfg);
    }
    return *sync_queue_;
}

void
CompCpyEngine::start(const CompCpyParams &params,
                     std::function<void()> on_done)
{
    // Submit-then-poll facade: a single-op descriptor whose record is
    // consumed by the callback the moment it is written. Rejections
    // (injected kQueueFull, or a genuinely full facade ring) retry
    // after pumping the event queue, then force-submit — the bounded
    // escape hatch that keeps the old start() contract: on_done always
    // eventually fires.
    auto consume = [cb = std::move(on_done)](const CompletionRecord &) {
        cb();
    };
    const Descriptor desc = Descriptor::single(params);
    for (unsigned attempt = 0; attempt < kMaxSubmitRetries; ++attempt) {
        if (syncQueue().submit(desc, 0, consume))
            return;
        memory_.events().run();
    }
    syncQueue().submitForce(desc, 0, consume);
}

void
CompCpyEngine::run(const CompCpyParams &params)
{
    const Descriptor desc = Descriptor::single(params);
    std::optional<std::uint64_t> id;
    for (unsigned attempt = 0;
         attempt < kMaxSubmitRetries && !id; ++attempt) {
        id = syncQueue().submit(desc);
        if (!id)
            memory_.events().run();
    }
    if (!id)
        id = syncQueue().submitForce(desc);
    syncQueue().wait(*id);
}

void
CompCpyEngine::startOp(const CompCpyParams &params, std::uint32_t span,
                       std::function<void(const OpOutcome &)> on_done)
{
    // Alg. 2 lines 3-6: alignment checks.
    SD_ASSERT(isPageAligned(params.dbuf) && isPageAligned(params.sbuf),
              "CompCpy buffers must be 4 KB aligned");
    SD_ASSERT(params.size > 0, "empty CompCpy");
    if (params.ulp == smartdimm::UlpKind::kDeflate)
        SD_ASSERT(params.size <= smartdimm::kDeflateMaxPayload,
                  "deflate offloads are page-granular");

    auto flow = std::make_shared<Flow>();
    flow->params = params;
    flow->on_done = std::move(on_done);
    flow->src_pages = divCeil(params.size, kPageSize);
    flow->dst_pages = destPages(params);
    flow->begin = memory_.events().now();
    flow->degraded_base = memory_.degradedReads();
    flow->span = span; // opened by the owning work queue at submit
    ++stats_.calls;
    stats_.pages_offloaded += flow->dst_pages;

    checkFreePages(flow);
}

void
CompCpyEngine::checkFreePages(std::shared_ptr<Flow> flow)
{
    // Alg. 2 lines 7-17: reserve scratchpad pages under the lock,
    // refreshing the shadow counter lazily from the MMIO register.
    ++shared_.lock_acquisitions;
    const auto needed =
        static_cast<std::int64_t>(flow->dst_pages);
    if (shared_.free_pages > needed) {
        shared_.free_pages -= needed;
        flushSource(std::move(flow));
        return;
    }

    ++stats_.freepages_refreshes;
    auto reg = std::make_shared<std::array<std::uint8_t, kCacheLineSize>>();
    memory_.mmioRead(driver_.mmio(smartdimm::MmioReg::kFreePages),
                     reg->data(), [this, flow, reg, needed](Tick) {
        std::uint64_t hw_free = 0;
        std::memcpy(&hw_free, reg->data(), sizeof(hw_free));
        shared_.free_pages = static_cast<std::int64_t>(hw_free);
        if (shared_.free_pages > needed) {
            shared_.free_pages -= needed;
            flushSource(flow);
            return;
        }
        // Unlikely path (Alg. 2 line 11): Force-Recycle.
        if (++flow->recycle_attempts > kMaxRecycleAttempts) {
            ++stats_.recycle_bailouts;
            flow->bailed = true;
            SD_TRACE_EVENT(flow->span, trace::Stage::kFault,
                           memory_.events().now(), flow->params.dbuf);
            flushSource(flow);
            return;
        }
        forceRecycle(flow, static_cast<std::size_t>(needed));
    });
}

void
CompCpyEngine::forceRecycle(std::shared_ptr<Flow> flow,
                            std::size_t required_pages)
{
    // Algorithm 1: read the pending list, flush those pages so their
    // cached destination lines write back and drain the scratchpad.
    ++stats_.force_recycles;
    SD_TRACE_EVENT(flow->span, trace::Stage::kForceRecycle,
                   memory_.events().now(), flow->params.dbuf);
    auto reg = std::make_shared<std::array<std::uint8_t, kCacheLineSize>>();
    memory_.mmioRead(driver_.mmio(smartdimm::MmioReg::kPendingList),
                     reg->data(),
                     [this, flow, reg, required_pages](Tick) {
        std::uint64_t words[8];
        std::memcpy(words, reg->data(), sizeof(words));
        const std::size_t count =
            std::min<std::uint64_t>(words[0], 7);
        std::size_t to_free =
            std::min<std::size_t>(count, required_pages + 1);
        // A degraded register read can hand back stale or zeroed
        // bytes; only page-aligned non-zero entries are usable.
        while (to_free > 0 &&
               (words[to_free] == 0 || !isPageAligned(words[to_free])))
            --to_free;

        if (to_free == 0) {
            // Nothing pending: the scratchpad will free as in-flight
            // drains land; retry the freePages check shortly.
            memory_.events().scheduleIn(100'000, [this, flow] {
                shared_.free_pages = -1;
                checkFreePages(flow);
            });
            return;
        }

        auto remaining =
            std::make_shared<std::size_t>(to_free * kLinesPerPage);
        auto finish = [this, flow, remaining] {
            if (--*remaining == 0) {
                shared_.free_pages = -1;
                checkFreePages(flow);
            }
        };
        for (std::size_t i = 0; i < to_free; ++i) {
            const Addr page = words[1 + i];
            for (std::size_t l = 0; l < kLinesPerPage; ++l) {
                const Addr line = page + l * kCacheLineSize;
                if (memory_.llc().contains(line)) {
                    // Cached copy exists: a flush generates the wrCAS
                    // that drains the scratchpad line.
                    memory_.flushLine(line, [finish](Tick) { finish(); });
                    continue;
                }
                // Uncached: read the line back (served from the
                // scratchpad when staged) and rewrite the identical
                // bytes — the wrCAS drains staged lines and is a
                // harmless idempotent store otherwise.
                auto staging = std::make_shared<
                    std::array<std::uint8_t, kCacheLineSize>>();
                memory_.mmioRead(line, staging->data(),
                                 [this, line, staging, finish](Tick) {
                    memory_.mmioWrite(line, staging->data(),
                                      [finish, staging](Tick) {
                        finish();
                    });
                });
            }
        }
    });
}

void
CompCpyEngine::flushSource(std::shared_ptr<Flow> flow)
{
    // Alg. 2 line 19: flush sbuf so rdCAS commands reach the DIMM.
    const std::size_t lines =
        divCeil(flow->params.size, kCacheLineSize);
    auto remaining = std::make_shared<std::size_t>(lines);
    for (std::size_t l = 0; l < lines; ++l) {
        const Addr line = flow->params.sbuf + l * kCacheLineSize;
        memory_.flushLine(line, [this, flow, remaining, line](Tick at) {
            SD_TRACE_EVENT(flow->span, trace::Stage::kFlush, at, line);
            if (--*remaining == 0)
                registerPages(flow);
        });
    }
}

void
CompCpyEngine::registerPages(std::shared_ptr<Flow> flow)
{
    // Alg. 2 lines 21-23: one MMIO write per page pair (S17).
    const CompCpyParams &p = flow->params;
    if (flow->cursor >= flow->dst_pages) {
        flow->cursor = 0;
        copyLines(flow);
        return;
    }

    const std::size_t page = flow->cursor++;
    std::array<std::uint8_t, kCacheLineSize> burst{};

    if (p.ulp == smartdimm::UlpKind::kTlsEncrypt) {
        smartdimm::TlsPageRegistration reg;
        reg.page_index = static_cast<std::uint16_t>(page);
        reg.message_len = static_cast<std::uint32_t>(p.size);
        reg.message_id = p.message_id;
        const bool tag_only = page >= flow->src_pages;
        reg.sbuf_page = tag_only
                            ? (p.dbuf / kPageSize + page)
                            : (p.sbuf / kPageSize + page);
        reg.dbuf_page = p.dbuf / kPageSize + page;
        std::memcpy(reg.key, p.key, sizeof(reg.key));
        std::memcpy(reg.iv, p.iv.data(), sizeof(reg.iv));
        reg.pack(burst.data());
    } else {
        smartdimm::DeflatePageRegistration reg;
        reg.payload_bytes = static_cast<std::uint16_t>(p.size);
        reg.sbuf_page = p.sbuf / kPageSize;
        reg.dbuf_page = p.dbuf / kPageSize;
        reg.pack(burst.data());
    }

    auto data = std::make_shared<std::array<std::uint8_t, kCacheLineSize>>(
        burst);
    const Addr reg_addr = driver_.mmio(smartdimm::MmioReg::kRegister);
    memory_.mmioWrite(reg_addr, data->data(),
                      [this, flow, data, reg_addr](Tick at) {
        SD_TRACE_EVENT(flow->span, trace::Stage::kRegister, at, reg_addr);
        registerPages(flow);
    });
}

void
CompCpyEngine::copyLines(std::shared_ptr<Flow> flow)
{
    // Alg. 2 lines 24-30: the memcpy. Ordered mode fences between
    // 64-byte copies (one line strictly after another); unordered mode
    // still serialises read->write per line but lets the memory system
    // pipeline across lines via a small window.
    const CompCpyParams &p = flow->params;
    const std::size_t lines = divCeil(p.size, kCacheLineSize);

    if (flow->cursor >= lines) {
        flow->cursor = 0;
        zeroTrailer(flow);
        return;
    }

    // kOrderedFence: an injected violation issues one window of two
    // lines in *reverse*, so the second line's rdCAS reaches the
    // streaming DSA first — exactly the bug the fences prevent. The
    // DSA poisons the job; the page never completes; the controller
    // eventually degrades its reads and the call is flagged.
    bool fence_violation = false;
    std::size_t window;
    if (p.ordered) {
        fence_violation = lines - flow->cursor >= 2 &&
                          injectFault(fault::Site::kOrderedFence);
        window = fence_violation ? 2 : 1;
        if (fence_violation) {
            ++stats_.fence_violations;
            SD_TRACE_EVENT(flow->span, trace::Stage::kFault,
                           memory_.events().now(),
                           p.sbuf + flow->cursor * kCacheLineSize);
        }
    } else {
        window = std::min<std::size_t>(8, lines - flow->cursor);
    }

    auto joined = std::make_shared<std::size_t>(window);
    for (std::size_t w = 0; w < window; ++w) {
        const std::size_t issue = fence_violation ? window - 1 - w : w;
        const std::size_t line_index = flow->cursor + issue;
        const Addr src = p.sbuf + line_index * kCacheLineSize;
        const Addr dst = p.dbuf + line_index * kCacheLineSize;
        auto staging = std::make_shared<
            std::array<std::uint8_t, kCacheLineSize>>();
        memory_.readLine(src, staging->data(),
                         [this, flow, joined, dst, staging](Tick) {
            ++stats_.lines_copied;
            memory_.writeLine(dst, staging->data(),
                              [this, flow, joined, dst, staging](Tick at) {
                SD_TRACE_EVENT(flow->span, trace::Stage::kCopy, at, dst);
                if (--*joined == 0)
                    copyLines(flow);
            });
        });
    }
    flow->cursor += window;
}

void
CompCpyEngine::zeroTrailer(std::shared_ptr<Flow> flow)
{
    // TLS only: the record trailer (tag space) belongs to dbuf but is
    // never written by the memcpy; writing zeros makes those lines
    // dirty so LLC writebacks self-recycle them like any other line.
    const CompCpyParams &p = flow->params;
    const std::size_t payload_lines = divCeil(p.size, kCacheLineSize);
    const std::size_t total_lines =
        p.ulp == smartdimm::UlpKind::kTlsEncrypt
            ? flow->dst_pages * kLinesPerPage
            : payload_lines;

    if (payload_lines >= total_lines) {
        finishFlow(flow);
        return;
    }

    auto remaining =
        std::make_shared<std::size_t>(total_lines - payload_lines);
    static const std::array<std::uint8_t, kCacheLineSize> kZeros{};
    for (std::size_t l = payload_lines; l < total_lines; ++l) {
        memory_.writeLine(p.dbuf + l * kCacheLineSize, kZeros.data(),
                          [this, flow, remaining](Tick) {
            if (--*remaining == 0)
                finishFlow(flow);
        });
    }
}

void
CompCpyEngine::finishFlow(const std::shared_ptr<Flow> &flow)
{
    if (!fault_plan_) {
        completeFlow(flow, 0);
        return;
    }
    // With a fault plan attached, poll the device's fault-status
    // register so rejected registrations surface as a degraded call
    // (the fault-free path issues no extra MMIO traffic).
    auto reg = std::make_shared<std::array<std::uint8_t, kCacheLineSize>>();
    memory_.mmioRead(driver_.mmio(smartdimm::MmioReg::kFaultStatus),
                     reg->data(), [this, flow, reg](Tick) {
        std::uint64_t rejected = 0;
        std::memcpy(&rejected, reg->data(), sizeof(rejected));
        const std::uint64_t fresh =
            rejected >= seen_rejections_ ? rejected - seen_rejections_
                                         : 0;
        seen_rejections_ = std::max(seen_rejections_, rejected);
        completeFlow(flow, fresh);
    });
}

void
CompCpyEngine::completeFlow(const std::shared_ptr<Flow> &flow,
                            std::uint64_t fresh_rejections)
{
    const std::uint64_t degraded =
        memory_.degradedReads() - flow->degraded_base;
    stats_.rejected_registrations += fresh_rejections;
    last_call_degraded_ = fresh_rejections > 0 || degraded > 0;
    if (last_call_degraded_) {
        ++stats_.degraded_calls;
        SD_TRACE_EVENT(flow->span, trace::Stage::kFault,
                       memory_.events().now(), flow->params.dbuf);
    }
    call_latency_.sample(memory_.events().now() - flow->begin);

    OpOutcome outcome;
    outcome.degraded = degraded > 0;
    outcome.rejected = fresh_rejections > 0;
    outcome.bailout = flow->bailed;
    flow->on_done(outcome);
}

void
CompCpyEngine::use(Addr dbuf, std::size_t bytes,
                   std::function<void()> on_done)
{
    const std::size_t lines = divCeil(bytes, kCacheLineSize);
    auto remaining = std::make_shared<std::size_t>(lines);
    auto done = std::make_shared<std::function<void()>>(std::move(on_done));
    for (std::size_t l = 0; l < lines; ++l) {
        const Addr line = dbuf + l * kCacheLineSize;
        memory_.flushLine(line, [remaining, done, line](Tick at) {
            SD_TRACE_PAGE_EVENT(line / kPageSize, trace::Stage::kUse, at,
                                line);
            if (--*remaining == 0)
                (*done)();
        });
    }
}

void
CompCpyEngine::reportStats(trace::StatsBlock &block) const
{
    block.scalar("calls", static_cast<double>(stats_.calls));
    block.scalar("pages_offloaded",
                 static_cast<double>(stats_.pages_offloaded));
    block.scalar("force_recycles",
                 static_cast<double>(stats_.force_recycles));
    block.scalar("freepages_refreshes",
                 static_cast<double>(stats_.freepages_refreshes));
    block.scalar("lines_copied",
                 static_cast<double>(stats_.lines_copied));
    block.scalar("degraded_calls",
                 static_cast<double>(stats_.degraded_calls));
    block.scalar("rejected_registrations",
                 static_cast<double>(stats_.rejected_registrations));
    block.scalar("recycle_bailouts",
                 static_cast<double>(stats_.recycle_bailouts));
    block.scalar("fence_violations",
                 static_cast<double>(stats_.fence_violations));
    block.scalar("shared_lock_acquisitions",
                 static_cast<double>(shared_.lock_acquisitions));
    block.hist("call_latency_ticks", call_latency_);
}

void
CompCpyEngine::useSync(Addr dbuf, std::size_t bytes)
{
    bool done = false;
    use(dbuf, bytes, [&done] { done = true; });
    while (!done)
        memory_.events().run();
}

std::vector<std::uint8_t>
CompCpyEngine::readResult(Addr dbuf, std::size_t bytes)
{
    const std::size_t lines = divCeil(bytes, kCacheLineSize);
    std::vector<std::uint8_t> out(lines * kCacheLineSize);
    memory_.readSync(dbuf, out.data(), out.size());
    out.resize(bytes);
    return out;
}

} // namespace sd::compcpy
