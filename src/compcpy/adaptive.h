/**
 * @file
 * Adaptive offload policy (Sec. V-C / Fig. 8): the software stack
 * samples the LLC miss rate and switches ULP processing between the
 * CPU and SmartDIMM per message. An EWMA plus hysteresis keeps the
 * decision stable around the threshold.
 */

#ifndef SD_COMPCPY_ADAPTIVE_H
#define SD_COMPCPY_ADAPTIVE_H

#include "cache/cache.h"
#include "trace/trace.h"

namespace sd::compcpy {

/** Tunables for the contention probe. */
struct AdaptiveConfig
{
    double threshold = 0.30;    ///< miss rate above which to offload
    double hysteresis = 0.05;   ///< +/- band around the threshold
    double ewma_alpha = 0.3;    ///< smoothing of probe samples
};

/** Decision state machine fed by periodic LLC probes. */
class LlcContentionProbe
{
  public:
    LlcContentionProbe(cache::Cache &llc, const AdaptiveConfig &config = {})
        : llc_(llc), config_(config)
    {
    }

    /**
     * Take a probe sample and update the decision. Called
     * periodically by the engine (each batch of requests).
     */
    void
    sample()
    {
        const double rate = llc_.probeMissRate();
        ewma_ = ewma_ < 0 ? rate
                          : config_.ewma_alpha * rate +
                                (1 - config_.ewma_alpha) * ewma_;
        ++samples_;
        const bool was = offload_;
        if (offload_ && ewma_ < config_.threshold - config_.hysteresis)
            offload_ = false;
        else if (!offload_ &&
                 ewma_ > config_.threshold + config_.hysteresis)
            offload_ = true;
        if (offload_ != was)
            ++switches_;
    }

    /**
     * Signal that the last offloaded call completed degraded (ALERT_N
     * exhaustion or a rejected registration). The probe immediately
     * falls back to CPU placement and resets the EWMA so the next
     * sample() re-learns the contention level from scratch rather
     * than re-offloading on stale history.
     */
    void
    noteDegraded()
    {
        if (offload_)
            ++switches_;
        offload_ = false;
        ewma_ = -1.0;
        ++degraded_notes_;
    }

    /** Current decision: true = offload to SmartDIMM. */
    bool shouldOffload() const { return offload_; }

    /** Smoothed miss rate. */
    double missRateEwma() const { return ewma_ < 0 ? 0.0 : ewma_; }

    /** Probe samples taken. */
    std::uint64_t samples() const { return samples_; }

    /** CPU<->SmartDIMM decision flips (stability metric). */
    std::uint64_t switches() const { return switches_; }

    /** Degraded-call fallbacks forced via noteDegraded(). */
    std::uint64_t degradedNotes() const { return degraded_notes_; }

    /** Contribute probe counters to a stats dump. */
    void
    reportStats(trace::StatsBlock &block) const
    {
        block.scalar("samples", static_cast<double>(samples_));
        block.scalar("switches", static_cast<double>(switches_));
        block.scalar("degraded_notes",
                     static_cast<double>(degraded_notes_));
        block.scalar("miss_rate_ewma", missRateEwma());
        block.scalar("offloading", offload_ ? 1.0 : 0.0);
    }

  private:
    cache::Cache &llc_;
    AdaptiveConfig config_;
    double ewma_ = -1.0;
    bool offload_ = false;
    std::uint64_t samples_ = 0;
    std::uint64_t switches_ = 0;
    std::uint64_t degraded_notes_ = 0;
};

} // namespace sd::compcpy

#endif // SD_COMPCPY_ADAPTIVE_H
