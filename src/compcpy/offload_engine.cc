#include "compcpy/offload_engine.h"

#include <cstring>

#include "common/log.h"

namespace sd::compcpy {

AdaptiveTlsEngine::AdaptiveTlsEngine(cache::MemorySystem &memory,
                                     Driver &driver,
                                     CompCpyEngine::SharedState &shared,
                                     const std::uint8_t key[16],
                                     const crypto::GcmIv &static_iv,
                                     const AdaptiveConfig &adaptive)
    : memory_(memory), driver_(driver), compcpy_(memory, driver, shared),
      probe_(memory.llc(), adaptive), static_iv_(static_iv)
{
    std::memcpy(key_, key, sizeof(key_));
}

void
AdaptiveTlsEngine::registerStats(trace::StatsRegistry &registry,
                                 const std::string &prefix) const
{
    registry.add(prefix + "engine", [this](trace::StatsBlock &block) {
        block.scalar("cpu_records", static_cast<double>(cpu_records_));
        block.scalar("offloaded_records",
                     static_cast<double>(offloaded_records_));
        block.scalar("records",
                     static_cast<double>(cpu_records_ + offloaded_records_));
    });
    registry.add(prefix + "probe", [this](trace::StatsBlock &block) {
        probe_.reportStats(block);
    });
    registry.add(prefix + "compcpy", [this](trace::StatsBlock &block) {
        compcpy_.reportStats(block);
    });
}

EngineRecord
AdaptiveTlsEngine::protectRecord(const std::uint8_t *plain,
                                 std::size_t len,
                                 std::optional<ProcessedOn> force)
{
    SD_ASSERT(len > 0 && len <= crypto::kTlsMaxFragment,
              "record size out of range");

    // Per-record nonce: static IV XOR big-endian sequence number, the
    // same derivation the software record layer uses.
    crypto::GcmIv nonce = static_iv_;
    const std::uint64_t seq = seq_++;
    for (int i = 0; i < 8; ++i)
        nonce[4 + i] ^= static_cast<std::uint8_t>(seq >> (56 - 8 * i));

    const ProcessedOn target =
        force.value_or(probe_.shouldOffload() ? ProcessedOn::kSmartDimm
                                              : ProcessedOn::kCpu);

    EngineRecord record;
    record.on = target;

    if (target == ProcessedOn::kCpu) {
        ++cpu_records_;
        crypto::GcmContext ctx(key_, crypto::Aes::KeySize::k128);
        record.body.resize(len + crypto::kTlsTagSize);
        const crypto::GcmTag tag =
            ctx.encrypt(nonce, plain, len, record.body.data());
        std::memcpy(record.body.data() + len, tag.data(), tag.size());
        return record;
    }

    ++offloaded_records_;

    // SmartDIMM path: stage the plaintext in an sbuf, CompCpy it into
    // a dbuf, flush (USE) and read back ciphertext || tag.
    const std::size_t src_bytes = divCeil(len, kPageSize) * kPageSize;
    const std::size_t dst_bytes =
        divCeil(len + crypto::kTlsTagSize, kPageSize) * kPageSize;
    const Addr sbuf = driver_.alloc(src_bytes);
    const Addr dbuf = driver_.alloc(dst_bytes);

    // Application writes the plaintext (padding the tail line).
    std::vector<std::uint8_t> staged(src_bytes, 0);
    std::memcpy(staged.data(), plain, len);
    memory_.writeSync(sbuf, staged.data(), staged.size());

    CompCpyParams params;
    params.dbuf = dbuf;
    params.sbuf = sbuf;
    params.size = len;
    params.ulp = smartdimm::UlpKind::kTlsEncrypt;
    params.message_id = next_message_id_++;
    std::memcpy(params.key, key_, sizeof(params.key));
    params.iv = nonce;

    compcpy_.run(params);
    compcpy_.useSync(dbuf, dst_bytes);
    record.body =
        compcpy_.readResult(dbuf, len + crypto::kTlsTagSize);

    driver_.release(sbuf, src_bytes);
    driver_.release(dbuf, dst_bytes);
    return record;
}

} // namespace sd::compcpy
