#include "compcpy/offload_engine.h"

#include <cstring>

#include "common/log.h"

namespace sd::compcpy {

WorkQueueConfig
AdaptiveTlsEngine::queueConfig()
{
    WorkQueueConfig cfg;
    cfg.id = 1; // the sync facade owns queue 0
    cfg.mode = QueueMode::kDedicated;
    cfg.depth = 32;
    cfg.max_inflight = 8;
    return cfg;
}

AdaptiveTlsEngine::AdaptiveTlsEngine(cache::MemorySystem &memory,
                                     Driver &driver,
                                     CompCpyEngine::SharedState &shared,
                                     const std::uint8_t key[16],
                                     const crypto::GcmIv &static_iv,
                                     const AdaptiveConfig &adaptive)
    : memory_(memory), driver_(driver), compcpy_(memory, driver, shared),
      queue_(compcpy_, queueConfig()), probe_(memory.llc(), adaptive),
      static_iv_(static_iv)
{
    std::memcpy(key_, key, sizeof(key_));
}

void
AdaptiveTlsEngine::registerStats(trace::StatsRegistry &registry,
                                 const std::string &prefix) const
{
    registry.add(prefix + "engine", [this](trace::StatsBlock &block) {
        block.scalar("cpu_records", static_cast<double>(cpu_records_));
        block.scalar("offloaded_records",
                     static_cast<double>(offloaded_records_));
        block.scalar("records",
                     static_cast<double>(cpu_records_ + offloaded_records_));
    });
    registry.add(prefix + "probe", [this](trace::StatsBlock &block) {
        probe_.reportStats(block);
    });
    registry.add(prefix + "compcpy", [this](trace::StatsBlock &block) {
        compcpy_.reportStats(block);
    });
    registry.add(prefix + "queue", [this](trace::StatsBlock &block) {
        queue_.reportStats(block);
    });
}

EngineRecord
AdaptiveTlsEngine::protectRecord(const std::uint8_t *plain,
                                 std::size_t len,
                                 std::optional<ProcessedOn> force)
{
    auto records = protectRecords({{plain, len}}, force);
    return std::move(records.front());
}

std::vector<EngineRecord>
AdaptiveTlsEngine::protectRecords(
    const std::vector<std::pair<const std::uint8_t *, std::size_t>>
        &plains,
    std::optional<ProcessedOn> force)
{
    SD_ASSERT(!plains.empty(), "empty record batch");

    // One placement decision for the whole batch — the per-queue
    // granularity the work-queue front end buys us.
    const ProcessedOn target =
        force.value_or(probe_.shouldOffload() ? ProcessedOn::kSmartDimm
                                              : ProcessedOn::kCpu);

    std::vector<EngineRecord> records;
    records.reserve(plains.size());

    // Per-record nonces: static IV XOR big-endian sequence number,
    // the same derivation the software record layer uses.
    std::vector<crypto::GcmIv> nonces;
    nonces.reserve(plains.size());
    for (std::size_t i = 0; i < plains.size(); ++i) {
        SD_ASSERT(plains[i].second > 0 &&
                      plains[i].second <= crypto::kTlsMaxFragment,
                  "record size out of range");
        crypto::GcmIv nonce = static_iv_;
        const std::uint64_t seq = seq_++;
        for (int b = 0; b < 8; ++b)
            nonce[4 + b] ^=
                static_cast<std::uint8_t>(seq >> (56 - 8 * b));
        nonces.push_back(nonce);
    }

    if (target == ProcessedOn::kCpu) {
        crypto::GcmContext ctx(key_, crypto::Aes::KeySize::k128);
        for (std::size_t i = 0; i < plains.size(); ++i) {
            const auto [plain, len] = plains[i];
            ++cpu_records_;
            EngineRecord record;
            record.on = ProcessedOn::kCpu;
            record.body.resize(len + crypto::kTlsTagSize);
            const crypto::GcmTag tag =
                ctx.encrypt(nonces[i], plain, len, record.body.data());
            std::memcpy(record.body.data() + len, tag.data(),
                        tag.size());
            records.push_back(std::move(record));
        }
        return records;
    }

    // SmartDIMM path: stage every plaintext in an sbuf, pack the
    // whole batch into one descriptor, submit, and reap the single
    // fanned-in completion record.
    struct Staged
    {
        Addr sbuf = 0;
        Addr dbuf = 0;
        std::size_t src_bytes = 0;
        std::size_t dst_bytes = 0;
    };
    std::vector<Staged> staged;
    staged.reserve(plains.size());
    std::vector<CompCpyParams> ops;
    ops.reserve(plains.size());

    for (std::size_t i = 0; i < plains.size(); ++i) {
        const auto [plain, len] = plains[i];
        ++offloaded_records_;

        Staged s;
        s.src_bytes = divCeil(len, kPageSize) * kPageSize;
        s.dst_bytes =
            divCeil(len + crypto::kTlsTagSize, kPageSize) * kPageSize;
        s.sbuf = driver_.alloc(s.src_bytes);
        s.dbuf = driver_.alloc(s.dst_bytes);

        // Application writes the plaintext (padding the tail line).
        std::vector<std::uint8_t> page(s.src_bytes, 0);
        std::memcpy(page.data(), plain, len);
        memory_.writeSync(s.sbuf, page.data(), page.size());
        staged.push_back(s);

        CompCpyParams params;
        params.dbuf = s.dbuf;
        params.sbuf = s.sbuf;
        params.size = len;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = next_message_id_++;
        std::memcpy(params.key, key_, sizeof(params.key));
        params.iv = nonces[i];
        ops.push_back(params);
    }

    const Descriptor desc = Descriptor::batch(std::move(ops));
    std::optional<std::uint64_t> id = queue_.submit(desc);
    if (!id)
        id = queue_.submitForce(desc);
    const CompletionRecord rec = queue_.wait(*id);

    // Per-queue fallback: one degraded batch flips the probe once, so
    // the *next* reap routes to the CPU while contention re-learns.
    if (rec.status != CompletionStatus::kSuccess)
        probe_.noteDegraded();

    for (std::size_t i = 0; i < plains.size(); ++i) {
        const auto len = plains[i].second;
        const Staged &s = staged[i];
        compcpy_.useSync(s.dbuf, s.dst_bytes);
        EngineRecord record;
        record.on = ProcessedOn::kSmartDimm;
        record.body =
            compcpy_.readResult(s.dbuf, len + crypto::kTlsTagSize);
        records.push_back(std::move(record));
        driver_.release(s.sbuf, s.src_bytes);
        driver_.release(s.dbuf, s.dst_bytes);
    }
    return records;
}

} // namespace sd::compcpy
