/**
 * @file
 * The CompCpy API (Algorithm 2) and Force-Recycle (Algorithm 1).
 * CompCpy extends memcpy: while copying a 4 KB-aligned source buffer
 * to a destination buffer it configures SmartDIMM so the data is
 * transformed on its way through the DDR channel. The engine runs
 * against the simulated MemorySystem, so every step — the cache
 * flush, the MMIO registration, the 64-byte copy loop with optional
 * fences, and the USE-side flush — produces real DDR commands at the
 * buffer device.
 */

#ifndef SD_COMPCPY_COMPCPY_H
#define SD_COMPCPY_COMPCPY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "common/stats.h"
#include "common/types.h"
#include "compcpy/driver.h"
#include "fault/fault.h"
#include "crypto/aes_gcm.h"
#include "smartdimm/dsa.h"
#include "smartdimm/mmio_layout.h"
#include "trace/trace.h"

namespace sd::compcpy {

class WorkQueue;

/** Parameters of one CompCpy invocation. */
struct CompCpyParams
{
    Addr dbuf = 0;          ///< page-aligned destination
    Addr sbuf = 0;          ///< page-aligned source
    std::size_t size = 0;   ///< source bytes (payload)
    bool ordered = false;   ///< fence between 64 B copies (Deflate)

    /** TLS context (used when ulp == kTlsEncrypt). */
    std::uint8_t key[16] = {};
    crypto::GcmIv iv{};
    std::uint64_t message_id = 0;

    smartdimm::UlpKind ulp = smartdimm::UlpKind::kTlsEncrypt;
};

/**
 * How one CompCpy op finished, reported to the owning work queue so
 * its completion record can mirror the PR 5 fault outcomes.
 */
struct OpOutcome
{
    bool degraded = false; ///< ALERT_N-exhausted (degraded) reads seen
    bool rejected = false; ///< device rejected a page registration
    bool bailout = false;  ///< Force-Recycle loop hit its bound
};

/** Outcome counters for one engine instance. */
struct CompCpyStats
{
    std::uint64_t calls = 0;
    std::uint64_t pages_offloaded = 0;
    std::uint64_t force_recycles = 0;
    std::uint64_t freepages_refreshes = 0;
    std::uint64_t lines_copied = 0;
    std::uint64_t degraded_calls = 0;    ///< kDegraded reads or rejections
    std::uint64_t rejected_registrations = 0; ///< device-side rejections seen
    std::uint64_t recycle_bailouts = 0;  ///< Force-Recycle loop bounded
    std::uint64_t fence_violations = 0;  ///< injected ordered-mode breaks
};

/**
 * The userspace CompCpy engine. One instance per logical core; the
 * freePages shadow counter is shared through a SharedState object
 * (the lock-protected global of Algorithm 2).
 */
class CompCpyEngine
{
  public:
    /** The lock-protected global freePages shadow (Alg. 2 line 1). */
    struct SharedState
    {
        std::int64_t free_pages = -1;
        std::uint64_t lock_acquisitions = 0;
    };

    CompCpyEngine(cache::MemorySystem &memory, Driver &driver,
                  SharedState &shared);
    ~CompCpyEngine();

    /**
     * Asynchronous CompCpy. Submits a single-op descriptor to the
     * engine's internal work queue (see syncQueue()) and invokes
     * @p on_done when its completion record lands — there is exactly
     * one execution path, the descriptor/work-queue one. The
     * destination must then be consumed via use().
     */
    void start(const CompCpyParams &params, std::function<void()> on_done);

    /**
     * Synchronous CompCpy: submit to the internal work queue, then
     * poll (pumping the event queue) until the completion record is
     * reaped — submit-then-poll is the only way an op executes.
     */
    void run(const CompCpyParams &params);

    /**
     * The internal work queue backing start()/run(). Lazily created
     * (queue id 0, shared mode, deep enough that the facade never
     * genuinely backpressures its callers). Exposed so tests and
     * stats dumps can observe the sync path's queue accounting.
     */
    WorkQueue &syncQueue();

    /**
     * USE(dbuf) (Alg. 2 line 32-33): flush the destination so the
     * Scratchpad drains to DRAM, making the transformed bytes visible.
     */
    void use(Addr dbuf, std::size_t bytes,
             std::function<void()> on_done);

    /** Synchronous use(). */
    void useSync(Addr dbuf, std::size_t bytes);

    /** Read transformed bytes back (after useSync). */
    std::vector<std::uint8_t> readResult(Addr dbuf, std::size_t bytes);

    /** Destination pages (incl. TLS trailer) a params needs. */
    static std::size_t destPages(const CompCpyParams &params);

    /**
     * Attach a fault plan (not owned; may be null). The engine itself
     * consults kOrderedFence (an ordered-mode copy issues one window
     * of two lines in reverse, breaking the fence contract); with any
     * plan attached it additionally polls the device's kFaultStatus
     * register at call completion so rejected registrations and
     * degraded reads surface as degraded_calls.
     */
    void setFaultPlan(fault::FaultPlan *plan) { fault_plan_ = plan; }

    /**
     * Name the device this engine drives so scoped fault rules
     * (`smartdimm[ch][dimm]/...`) can target its host-side sites
     * (kOrderedFence here, kQueueFull/kLostCompletion in the queues).
     */
    void setFaultScope(const fault::FaultScope &scope)
    {
        fault_scope_ = scope;
    }

    const fault::FaultScope &faultScope() const { return fault_scope_; }

    /**
     * Suffix for trace span names opened on this engine's behalf
     * (e.g. "ch1.d0" makes TLS spans "tls.ch1.d0"). Empty — the
     * default — keeps the legacy single-device names, so 1x1 golden
     * traces are unaffected. Composed names are interned because
     * trace::Span borrows the `const char *` and spans outlive the
     * engine (per-thread engines die before the tracer dumps).
     */
    void
    setSpanTag(const std::string &tag)
    {
        tls_span_name_ =
            tag.empty() ? "tls" : trace::internString("tls." + tag);
        deflate_span_name_ =
            tag.empty() ? "deflate"
                        : trace::internString("deflate." + tag);
    }

    /** Stable span name for @p ulp (valid process-wide). */
    const char *
    spanName(smartdimm::UlpKind ulp) const
    {
        return ulp == smartdimm::UlpKind::kTlsEncrypt
                   ? tls_span_name_
                   : deflate_span_name_;
    }

    /**
     * Whether the most recently completed call was degraded (ALERT_N
     * retry exhaustion or a rejected registration). The adaptive
     * policy uses this to fall back to CPU placement.
     */
    bool lastCallDegraded() const { return last_call_degraded_; }

    const CompCpyStats &stats() const { return stats_; }

    /** Start-to-done latency distribution of completed calls (ticks). */
    const LogHistogram &callLatency() const { return call_latency_; }

    /** Contribute engine counters to a stats dump. */
    void reportStats(trace::StatsBlock &block) const;

    // Accessors the work-queue front end drives the simulation with.
    cache::MemorySystem &memory() { return memory_; }
    Driver &driver() { return driver_; }
    fault::FaultPlan *faultPlan() { return fault_plan_; }

  private:
    friend class WorkQueue; ///< sole caller of startOp()

    struct Flow; ///< per-invocation continuation state

    /**
     * Execute one op of a dispatched descriptor: the full Algorithm 2
     * sequence (freePages check, Force-Recycle, flush, registration,
     * copy loop, trailer). Private by design — every op reaches the
     * engine through a WorkQueue, so the queue is the one execution
     * path (tools/sdlint.py enforces the same at the source level).
     * @p span is the trace span the owning queue opened at submit.
     */
    void startOp(const CompCpyParams &params, std::uint32_t span,
                 std::function<void(const OpOutcome &)> on_done);

    void checkFreePages(std::shared_ptr<Flow> flow);
    void forceRecycle(std::shared_ptr<Flow> flow,
                      std::size_t required_pages);
    void flushSource(std::shared_ptr<Flow> flow);
    void registerPages(std::shared_ptr<Flow> flow);
    void copyLines(std::shared_ptr<Flow> flow);
    void zeroTrailer(std::shared_ptr<Flow> flow);
    void finishFlow(const std::shared_ptr<Flow> &flow);
    void completeFlow(const std::shared_ptr<Flow> &flow,
                      std::uint64_t fresh_rejections);
    bool injectFault(fault::Site site);

    cache::MemorySystem &memory_;
    Driver &driver_;
    SharedState &shared_;
    fault::FaultPlan *fault_plan_ = nullptr;
    fault::FaultScope fault_scope_;
    const char *tls_span_name_ = "tls";        ///< interned/static
    const char *deflate_span_name_ = "deflate"; ///< interned/static
    std::uint64_t seen_rejections_ = 0; ///< kFaultStatus poll baseline
    bool last_call_degraded_ = false;
    CompCpyStats stats_;
    LogHistogram call_latency_;
    std::unique_ptr<WorkQueue> sync_queue_; ///< start()/run() facade
};

} // namespace sd::compcpy

#endif // SD_COMPCPY_COMPCPY_H
