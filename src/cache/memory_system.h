/**
 * @file
 * The host-side memory system: LLC in front of one or more DDR4
 * channels, each terminated by a DIMM device (plain or SmartDIMM).
 * Offers the line-granular operations the software stack performs —
 * cached loads/stores, clflush, uncached MMIO, and device DMA with
 * DDIO allocation — in both callback (event-driven) and synchronous
 * (run-to-completion) forms.
 */

#ifndef SD_CACHE_MEMORY_SYSTEM_H
#define SD_CACHE_MEMORY_SYSTEM_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/cache.h"
#include "common/types.h"
#include "mem/address_map.h"
#include "mem/backing_store.h"
#include "mem/dram_command.h"
#include "mem/memory_controller.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "trace/trace.h"

namespace sd::mem {
class CxlLink;
} // namespace sd::mem

namespace sd::cache {

/** Fixed host-side latencies (ticks = ps). */
struct HostLatencies
{
    Tick llc_hit = 14'000;     ///< ~14 ns LLC round trip
    Tick flush_clean = 4'000;  ///< clflush of an absent/clean line
    Tick store_commit = 2'000; ///< store visible to the cache
};

/** A plain (non-accelerating) DIMM: DRAM backed by the BackingStore. */
class PlainDimm : public mem::DimmDevice
{
  public:
    explicit PlainDimm(mem::BackingStore &store) : store_(store) {}

    void onCommand(const mem::DdrCommand &) override {}

    mem::ReadResponse
    onRead(const mem::DdrCommand &cmd, std::uint8_t *data) override
    {
        store_.read(cmd.addr, data, kCacheLineSize);
        return mem::ReadResponse::kOk;
    }

    void
    onWrite(const mem::DdrCommand &cmd, const std::uint8_t *data) override
    {
        store_.write(cmd.addr, data, kCacheLineSize);
    }

  private:
    mem::BackingStore &store_;
};

/**
 * Host memory system. Channel devices are supplied by the caller so
 * SmartDIMM buffer devices can be slotted in for any subset of
 * channels.
 */
class MemorySystem
{
  public:
    /** Completion callback (move-only; see sim/unique_function.h). */
    using Callback = UniqueFunctionT<void(Tick)>;

    /**
     * @param devices one DimmDevice per channel (geometry.channels)
     */
    MemorySystem(EventQueue &events, const mem::DramGeometry &geometry,
                 mem::ChannelInterleave interleave,
                 const CacheConfig &cache_config,
                 std::vector<mem::DimmDevice *> devices,
                 const mem::DramTiming &timing = {},
                 const mem::ControllerConfig &mc_config = {},
                 const HostLatencies &latencies = {});

    // ----- cached (CPU) path ------------------------------------------------

    /** Load one line through the LLC into @p dst. */
    void readLine(Addr addr, std::uint8_t *dst, Callback cb);

    /**
     * Store one full line through the LLC (full-line stores allocate
     * without fetching, as optimised memcpy does).
     */
    void writeLine(Addr addr, const std::uint8_t *src, Callback cb);

    /** clflush: writeback-if-dirty + invalidate. */
    void flushLine(Addr addr, Callback cb);

    // ----- uncached paths ---------------------------------------------------

    /** Uncached 64 B MMIO write (SmartDIMM config registers). */
    void mmioWrite(Addr addr, const std::uint8_t *src, Callback cb);

    /** Uncached 64 B MMIO read (pending lists, freePages). */
    void mmioRead(Addr addr, std::uint8_t *dst, Callback cb);

    /** Device DMA write (DDIO: allocates into the restricted ways). */
    void dmaWriteLine(Addr addr, const std::uint8_t *src, Callback cb);

    /** Device DMA read (e.g. NIC TX fetching a payload). */
    void dmaReadLine(Addr addr, std::uint8_t *dst, Callback cb);

    // ----- synchronous conveniences ----------------------------------------

    /** Run the event queue until @p pending ops complete. */
    void drain();

    /** Blocking multi-line helpers used by tests and examples. */
    void readSync(Addr addr, std::uint8_t *dst, std::size_t len);
    void writeSync(Addr addr, const std::uint8_t *src, std::size_t len);
    void flushSync(Addr addr, std::size_t len);

    // ----- accessors --------------------------------------------------------

    Cache &llc() { return llc_; }
    const Cache &llc() const { return llc_; }
    mem::BackingStore &store() { return store_; }
    EventQueue &events() { return events_; }
    const mem::AddressMap &addressMap() const { return map_; }
    mem::MemoryController &controller(unsigned channel);
    unsigned channels() const
    {
        return static_cast<unsigned>(controllers_.size());
    }

    /** Total DRAM traffic in bytes across all channels. */
    std::uint64_t dramBytes() const;

    /**
     * Attach a fault plan (not owned; may be null) to every channel
     * controller. The host-facing Callback API is unchanged — degraded
     * completions are tallied here and exposed via degradedReads() so
     * upper layers (CompCpy) can detect that a window of their traffic
     * came back untrusted.
     */
    void setFaultPlan(fault::FaultPlan *plan);

    /** Completions that came back mem::MemStatus::kDegraded. */
    std::uint64_t degradedReads() const { return degraded_reads_; }

    /**
     * Mark @p channel as CXL-attached far memory: every DRAM-side
     * access on it (LLC misses, writebacks with completions, MMIO)
     * defers its completion through @p link. LLC hits stay local-speed
     * — the cache hides the far tier exactly as real CXL.mem caching
     * does. The link is not owned and must outlive this object.
     */
    void attachCxlLink(unsigned channel, mem::CxlLink *link);

    /** @return the link serving @p channel, or null if local. */
    mem::CxlLink *cxlLink(unsigned channel) const;

    /**
     * Register "<prefix>llc" and one "<prefix>mc.chN" provider per
     * channel into @p registry. Providers reference this object —
     * remove them (or drop the registry) before destroying it.
     */
    void registerStats(trace::StatsRegistry &registry,
                       const std::string &prefix = "") const;

  private:
    mem::MemoryController &route(Addr addr);
    void writebackVictim(const AccessResult &result);

    /**
     * Route @p cb through the channel's CXL link when the address
     * lives on a far channel; identity on local channels.
     */
    mem::MemCallback linked(Addr addr, mem::MemCallback cb);

    /** Wrap a host Callback as a MemCallback that tallies kDegraded. */
    mem::MemCallback
    track(Callback cb)
    {
        return [this, cb = std::move(cb)](Tick at,
                                          mem::MemStatus status) mutable {
            if (status == mem::MemStatus::kDegraded)
                ++degraded_reads_;
            cb(at);
        };
    }

    EventQueue &events_;
    mem::AddressMap map_;
    Cache llc_;
    mem::BackingStore store_;
    HostLatencies latencies_;
    std::vector<std::unique_ptr<mem::MemoryController>> controllers_;
    std::vector<mem::CxlLink *> links_; ///< per channel; null = local
    std::uint64_t degraded_reads_ = 0;
};

} // namespace sd::cache

#endif // SD_CACHE_MEMORY_SYSTEM_H
