#include "cache/cache.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace sd::cache {

Cache::Cache(const CacheConfig &config)
    : config_(config), cpu_ways_(std::min(config.cpu_ways, config.ways)),
      sets_(config.sets()),
      set_mask_((sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0),
      tags_(sets_ * config.ways, kInvalidTag),
      lru_(tags_.size(), 0), dirty_(tags_.size(), 0),
      data_(tags_.size() * kCacheLineSize, 0)
{
    SD_ASSERT(sets_ > 0, "cache smaller than one set");
    SD_ASSERT(config.ddio_ways <= config.ways,
              "DDIO ways exceed associativity");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    const Addr line = addr / kCacheLineSize;
    // Power-of-two set counts (the common geometry) probe with a
    // mask; the general case pays the modulo.
    return set_mask_ ? (line & set_mask_) : (line % sets_);
}

std::size_t
Cache::find(Addr addr) const
{
    const Addr line = lineAlign(addr);
    const std::size_t base = setIndex(line) * config_.ways;
    const Addr *tags = tags_.data() + base;
    for (unsigned w = 0; w < config_.ways; ++w)
        if (tags[w] == line)
            return base + w;
    return kNotFound;
}

AccessResult
Cache::access(Addr addr, bool is_write, AllocClass cls,
              bool full_line_store)
{
    const Addr line_addr = lineAlign(addr);
    AccessResult result;

    if (const std::size_t slot = find(line_addr); slot != kNotFound) {
        ++stats_.hits;
        ++probe_hits_;
        lru_[slot] = ++lru_clock_;
        dirty_[slot] |= is_write;
        result.hit = true;
        return result;
    }

    ++stats_.misses;
    ++probe_misses_;

    // Victim selection restricted to the class's eligible ways.
    // CPU class uses ways [0, cpu_ways); DDIO uses the last ddio_ways
    // ways, mirroring Intel's restricted-allocation scheme.
    unsigned lo;
    unsigned hi;
    if (cls == AllocClass::kDdio) {
        lo = config_.ways - config_.ddio_ways;
        hi = config_.ways;
    } else {
        lo = 0;
        hi = std::max(1u, cpu_ways_);
    }

    const std::size_t base = setIndex(line_addr) * config_.ways;
    std::size_t victim = base + lo;
    for (unsigned w = lo; w < hi; ++w) {
        const std::size_t slot = base + w;
        if (tags_[slot] == kInvalidTag) {
            victim = slot;
            break;
        }
        if (lru_[slot] < lru_[victim])
            victim = slot;
    }

    if (tags_[victim] != kInvalidTag && dirty_[victim]) {
        result.writeback = tags_[victim];
        std::memcpy(result.writeback_data.data(),
                    data_.data() + victim * kCacheLineSize,
                    kCacheLineSize);
        ++stats_.writebacks;
    }

    tags_[victim] = line_addr;
    dirty_[victim] = is_write;
    lru_[victim] = ++lru_clock_;
    ++stats_.fills;
    result.filled = !(is_write && full_line_store);
    return result;
}

Cache::FlushResult
Cache::flush(Addr addr)
{
    ++stats_.flushes;
    FlushResult result;
    if (const std::size_t slot = find(addr); slot != kNotFound) {
        result.present = true;
        result.dirty = dirty_[slot] != 0;
        if (result.dirty) {
            ++stats_.flush_dirty;
            std::memcpy(result.data.data(),
                        data_.data() + slot * kCacheLineSize,
                        kCacheLineSize);
        }
        tags_[slot] = kInvalidTag;
        dirty_[slot] = 0;
    }
    return result;
}

std::uint8_t *
Cache::dataPtr(Addr addr)
{
    const std::size_t slot = find(addr);
    if (slot == kNotFound)
        return nullptr;
    return data_.data() + slot * kCacheLineSize;
}

const std::uint8_t *
Cache::dataPtr(Addr addr) const
{
    return const_cast<Cache *>(this)->dataPtr(addr);
}

bool
Cache::contains(Addr addr) const
{
    return find(addr) != kNotFound;
}

bool
Cache::isDirty(Addr addr) const
{
    const std::size_t slot = find(addr);
    return slot != kNotFound && dirty_[slot];
}

void
Cache::setCpuWays(unsigned ways)
{
    SD_ASSERT(ways >= 1 && ways <= config_.ways, "CAT mask out of range");
    cpu_ways_ = ways;
}

double
Cache::probeMissRate()
{
    const auto total = probe_hits_ + probe_misses_;
    const double rate =
        total ? static_cast<double>(probe_misses_) /
                    static_cast<double>(total)
              : 0.0;
    probe_hits_ = 0;
    probe_misses_ = 0;
    return rate;
}

} // namespace sd::cache
