#include "cache/cache.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace sd::cache {

Cache::Cache(const CacheConfig &config)
    : config_(config), cpu_ways_(std::min(config.cpu_ways, config.ways)),
      lines_(config.sets() * config.ways),
      data_(lines_.size() * kCacheLineSize, 0)
{
    SD_ASSERT(config.sets() > 0, "cache smaller than one set");
    SD_ASSERT(config.ddio_ways <= config.ways,
              "DDIO ways exceed associativity");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / kCacheLineSize) % config_.sets();
}

Cache::Line *
Cache::find(Addr addr)
{
    const Addr line = lineAlign(addr);
    Line *set = lines_.data() + setIndex(line) * config_.ways;
    for (unsigned w = 0; w < config_.ways; ++w)
        if (set[w].valid && set[w].tag == line)
            return set + w;
    return nullptr;
}

const Cache::Line *
Cache::find(Addr addr) const
{
    return const_cast<Cache *>(this)->find(addr);
}

AccessResult
Cache::access(Addr addr, bool is_write, AllocClass cls,
              bool full_line_store)
{
    const Addr line_addr = lineAlign(addr);
    AccessResult result;

    if (Line *line = find(line_addr)) {
        ++stats_.hits;
        ++probe_hits_;
        line->lru = ++lru_clock_;
        line->dirty |= is_write;
        result.hit = true;
        return result;
    }

    ++stats_.misses;
    ++probe_misses_;

    // Victim selection restricted to the class's eligible ways.
    // CPU class uses ways [0, cpu_ways); DDIO uses the last ddio_ways
    // ways, mirroring Intel's restricted-allocation scheme.
    unsigned lo;
    unsigned hi;
    if (cls == AllocClass::kDdio) {
        lo = config_.ways - config_.ddio_ways;
        hi = config_.ways;
    } else {
        lo = 0;
        hi = std::max(1u, cpu_ways_);
    }

    Line *set = lines_.data() + setIndex(line_addr) * config_.ways;
    Line *victim = set + lo;
    for (unsigned w = lo; w < hi; ++w) {
        if (!set[w].valid) {
            victim = set + w;
            break;
        }
        if (set[w].lru < victim->lru)
            victim = set + w;
    }

    if (victim->valid && victim->dirty) {
        result.writeback = victim->tag;
        const std::size_t slot =
            static_cast<std::size_t>(victim - lines_.data());
        std::memcpy(result.writeback_data.data(),
                    data_.data() + slot * kCacheLineSize, kCacheLineSize);
        ++stats_.writebacks;
    }

    victim->tag = line_addr;
    victim->valid = true;
    victim->dirty = is_write;
    victim->lru = ++lru_clock_;
    ++stats_.fills;
    result.filled = !(is_write && full_line_store);
    return result;
}

Cache::FlushResult
Cache::flush(Addr addr)
{
    ++stats_.flushes;
    FlushResult result;
    if (Line *line = find(addr)) {
        result.present = true;
        result.dirty = line->dirty;
        if (line->dirty) {
            ++stats_.flush_dirty;
            const std::size_t slot =
                static_cast<std::size_t>(line - lines_.data());
            std::memcpy(result.data.data(),
                        data_.data() + slot * kCacheLineSize,
                        kCacheLineSize);
        }
        line->valid = false;
        line->dirty = false;
    }
    return result;
}

std::uint8_t *
Cache::dataPtr(Addr addr)
{
    Line *line = find(addr);
    if (!line)
        return nullptr;
    const std::size_t slot = static_cast<std::size_t>(line - lines_.data());
    return data_.data() + slot * kCacheLineSize;
}

const std::uint8_t *
Cache::dataPtr(Addr addr) const
{
    return const_cast<Cache *>(this)->dataPtr(addr);
}

bool
Cache::contains(Addr addr) const
{
    return find(addr) != nullptr;
}

bool
Cache::isDirty(Addr addr) const
{
    const Line *line = find(addr);
    return line != nullptr && line->dirty;
}

void
Cache::setCpuWays(unsigned ways)
{
    SD_ASSERT(ways >= 1 && ways <= config_.ways, "CAT mask out of range");
    cpu_ways_ = ways;
}

double
Cache::probeMissRate()
{
    const auto total = probe_hits_ + probe_misses_;
    const double rate =
        total ? static_cast<double>(probe_misses_) /
                    static_cast<double>(total)
              : 0.0;
    probe_hits_ = 0;
    probe_misses_ = 0;
    return rate;
}

} // namespace sd::cache
