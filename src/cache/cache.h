/**
 * @file
 * Set-associative writeback last-level cache with way partitioning
 * (Intel CAT analogue) and DDIO-style restricted allocation for device
 * DMA. This produces the two behaviours the paper leans on:
 * leak-to-DRAM under contention (Obs. 3 / Fig. 3) and the LLC
 * writebacks that self-recycle SmartDIMM's scratchpad (Fig. 10).
 */

#ifndef SD_CACHE_CACHE_H
#define SD_CACHE_CACHE_H

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace sd::cache {

/** Who is allocating: decides which ways are eligible (CAT masks). */
enum class AllocClass : std::uint8_t
{
    kCpu,  ///< demand accesses from cores
    kDdio, ///< device DMA (NIC/storage): restricted ways
};

/** Cache geometry and partitioning. */
struct CacheConfig
{
    std::size_t size_bytes = 32ULL << 20; ///< Xeon 6242: ~22-32 MB class
    unsigned ways = 16;
    unsigned ddio_ways = 2;  ///< DDIO allocation limit (Intel default 2)
    unsigned cpu_ways = 16;  ///< CAT mask width for CPU class

    std::size_t
    sets() const
    {
        return size_bytes / (static_cast<std::size_t>(ways) *
                             kCacheLineSize);
    }
};

/** Aggregate statistics plus a windowed miss-rate probe. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t fills = 0;
    std::uint64_t flushes = 0;
    std::uint64_t flush_dirty = 0;

    double
    missRate() const
    {
        const auto total = hits + misses;
        return total ? static_cast<double>(misses) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Outcome of a single cache access. */
struct AccessResult
{
    bool hit = false;
    /** Dirty victim evicted by the fill (needs a memory write). */
    std::optional<Addr> writeback;
    /** The victim's data, valid when writeback is set. */
    std::array<std::uint8_t, kCacheLineSize> writeback_data{};
    /** Line was filled (miss) and needs a memory read first, unless
     *  the caller installs full-line data (store of a whole line). */
    bool filled = false;
};

/**
 * The LLC model. Data does not live here — the simulator keeps data in
 * the memory BackingStore and treats cached dirty lines as "newer than
 * memory" only where the experiment needs it (CompCpy tracks its own
 * buffers). The cache tracks tags, dirtiness and LRU exactly.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Access one line.
     * @param addr line-aligned physical address
     * @param is_write marks the line dirty
     * @param cls allocation class (CAT/DDIO mask)
     * @param full_line_store when true, a write miss allocates without
     *        a memory fetch (ItoM / full-line-store optimisation used
     *        by optimised memcpy)
     */
    AccessResult access(Addr addr, bool is_write, AllocClass cls,
                        bool full_line_store = false);

    /**
     * clflush semantics: invalidate the line, returning its address if
     * it was dirty (caller must write it back). @return {present,
     * was_dirty}.
     */
    struct FlushResult
    {
        bool present = false;
        bool dirty = false;
        /** The line's data, valid when dirty (caller writes it back). */
        std::array<std::uint8_t, kCacheLineSize> data{};
    };
    FlushResult flush(Addr addr);

    /**
     * Pointer to the 64 bytes cached for @p addr, or nullptr when the
     * line is absent. Valid until the next access()/flush().
     */
    std::uint8_t *dataPtr(Addr addr);
    const std::uint8_t *dataPtr(Addr addr) const;

    /** @return true if the line currently resides in the cache. */
    bool contains(Addr addr) const;

    /** @return true if present and dirty. */
    bool isDirty(Addr addr) const;

    /** Shrink/grow the CPU-class way allocation at runtime (CAT). */
    void setCpuWays(unsigned ways);
    unsigned cpuWays() const { return cpu_ways_; }

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    /**
     * Windowed miss-rate probe (the software stack's LLC contention
     * signal, Sec. V-C): miss rate since the last probe call.
     */
    double probeMissRate();

  private:
    /** Tag slot value marking an invalid way (real tags are
     *  line-aligned addresses and can never equal ~0). */
    static constexpr Addr kInvalidTag = ~Addr{0};

    /** Absent-line sentinel for find(). */
    static constexpr std::size_t kNotFound = ~std::size_t{0};

    std::size_t setIndex(Addr addr) const;
    /** @return flat line slot (set * ways + way), or kNotFound. */
    std::size_t find(Addr addr) const;

    CacheConfig config_;
    unsigned cpu_ways_;
    std::size_t sets_;     ///< cached config_.sets()
    std::size_t set_mask_; ///< sets_ - 1 when a power of two, else 0
    /**
     * Structure-of-arrays line state (sets x ways, row-major). The
     * tag probe — the hottest loop in the memory system — touches
     * only tags_: 16 ways x 8 B = two cache lines, with validity
     * folded into the tag as kInvalidTag instead of a separate flag.
     */
    std::vector<Addr> tags_;
    std::vector<std::uint64_t> lru_;
    std::vector<std::uint8_t> dirty_;
    std::vector<std::uint8_t> data_; ///< 64 B per line slot
    std::uint64_t lru_clock_ = 0;
    CacheStats stats_;
    std::uint64_t probe_hits_ = 0;
    std::uint64_t probe_misses_ = 0;
};

} // namespace sd::cache

#endif // SD_CACHE_CACHE_H
