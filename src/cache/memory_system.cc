#include "cache/memory_system.h"

#include <cstring>

#include "common/log.h"
#include "mem/cxl_link.h"

namespace sd::cache {

MemorySystem::MemorySystem(EventQueue &events,
                           const mem::DramGeometry &geometry,
                           mem::ChannelInterleave interleave,
                           const CacheConfig &cache_config,
                           std::vector<mem::DimmDevice *> devices,
                           const mem::DramTiming &timing,
                           const mem::ControllerConfig &mc_config,
                           const HostLatencies &latencies)
    : events_(events), map_(geometry, interleave), llc_(cache_config),
      latencies_(latencies)
{
    SD_ASSERT(devices.size() == geometry.channels,
              "need exactly one device per channel");
    for (unsigned ch = 0; ch < geometry.channels; ++ch)
        controllers_.push_back(std::make_unique<mem::MemoryController>(
            events_, map_, timing, mc_config, ch, *devices[ch]));
    links_.resize(geometry.channels, nullptr);
}

void
MemorySystem::attachCxlLink(unsigned channel, mem::CxlLink *link)
{
    SD_ASSERT(channel < links_.size(), "channel out of range");
    links_[channel] = link;
}

mem::CxlLink *
MemorySystem::cxlLink(unsigned channel) const
{
    SD_ASSERT(channel < links_.size(), "channel out of range");
    return links_[channel];
}

mem::MemCallback
MemorySystem::linked(Addr addr, mem::MemCallback cb)
{
    mem::CxlLink *link = links_[map_.decompose(addr).channel];
    if (!link)
        return cb;
    // The DRAM-side completion rides home over the CXL link: the flit
    // serializes on the shared wire and the response arrives a round
    // trip later. LLC hits never reach here.
    return [link, cb = std::move(cb)](Tick,
                                      mem::MemStatus status) mutable {
        link->transfer(kCacheLineSize,
                       [cb = std::move(cb), status](Tick at) mutable {
                           cb(at, status);
                       });
    };
}

mem::MemoryController &
MemorySystem::controller(unsigned channel)
{
    SD_ASSERT(channel < controllers_.size(), "channel out of range");
    return *controllers_[channel];
}

mem::MemoryController &
MemorySystem::route(Addr addr)
{
    return *controllers_[map_.decompose(addr).channel];
}

void
MemorySystem::setFaultPlan(fault::FaultPlan *plan)
{
    for (auto &mc : controllers_)
        mc->setFaultPlan(plan);
}

std::uint64_t
MemorySystem::dramBytes() const
{
    std::uint64_t total = 0;
    for (const auto &mc : controllers_)
        total += mc->stats().bytesMoved();
    return total;
}

void
MemorySystem::registerStats(trace::StatsRegistry &registry,
                            const std::string &prefix) const
{
    registry.add(prefix + "llc", [this](trace::StatsBlock &block) {
        const CacheStats &cs = llc_.stats();
        block.scalar("hits", static_cast<double>(cs.hits));
        block.scalar("misses", static_cast<double>(cs.misses));
        block.scalar("miss_rate", cs.missRate());
        block.scalar("writebacks", static_cast<double>(cs.writebacks));
        block.scalar("fills", static_cast<double>(cs.fills));
        block.scalar("flushes", static_cast<double>(cs.flushes));
        block.scalar("flush_dirty",
                     static_cast<double>(cs.flush_dirty));
    });
    for (std::size_t ch = 0; ch < controllers_.size(); ++ch) {
        const mem::MemoryController *mc = controllers_[ch].get();
        registry.add(prefix + "mc.ch" + std::to_string(ch),
                     [mc](trace::StatsBlock &block) {
                         mc->reportStats(block);
                     });
    }
}

void
MemorySystem::writebackVictim(const AccessResult &result)
{
    if (result.writeback)
        route(*result.writeback)
            .enqueueWrite(*result.writeback, result.writeback_data.data());
}

void
MemorySystem::readLine(Addr addr, std::uint8_t *dst, Callback cb)
{
    const Addr line = lineAlign(addr);
    const auto result = llc_.access(line, false, AllocClass::kCpu);
    if (result.hit) {
        std::memcpy(dst, llc_.dataPtr(line), kCacheLineSize);
        events_.scheduleIn(latencies_.llc_hit, [this, cb = std::move(cb)]()
                               mutable { cb(events_.now()); });
        return;
    }
    writebackVictim(result);
    // Fetch from DRAM; install into the already-allocated line, then
    // hand the bytes to the caller. The fill buffer rides inside the
    // (move-only) completion callback.
    auto fill = std::make_unique<std::array<std::uint8_t, kCacheLineSize>>();
    std::uint8_t *fill_data = fill->data();
    route(line).enqueueRead(
        line, fill_data,
        linked(line,
               track([line, dst, fill = std::move(fill),
                      cb = std::move(cb), this](Tick at) mutable {
            if (std::uint8_t *slot = llc_.dataPtr(line))
                std::memcpy(slot, fill->data(), kCacheLineSize);
            std::memcpy(dst, fill->data(), kCacheLineSize);
            cb(at);
        })));
}

void
MemorySystem::writeLine(Addr addr, const std::uint8_t *src, Callback cb)
{
    const Addr line = lineAlign(addr);
    const auto result =
        llc_.access(line, true, AllocClass::kCpu, /*full_line_store=*/true);
    writebackVictim(result);
    if (std::uint8_t *slot = llc_.dataPtr(line))
        std::memcpy(slot, src, kCacheLineSize);
    events_.scheduleIn(latencies_.store_commit, [this, cb = std::move(cb)]()
                           mutable { cb(events_.now()); });
}

void
MemorySystem::flushLine(Addr addr, Callback cb)
{
    const Addr line = lineAlign(addr);
    const auto result = llc_.flush(line);
    if (result.dirty) {
        route(line).enqueueWrite(line, result.data.data(),
                                 linked(line, track(std::move(cb))));
        return;
    }
    events_.scheduleIn(latencies_.flush_clean, [this, cb = std::move(cb)]()
                           mutable { cb(events_.now()); });
}

void
MemorySystem::mmioWrite(Addr addr, const std::uint8_t *src, Callback cb)
{
    route(addr).enqueueWrite(lineAlign(addr), src,
                             linked(addr, track(std::move(cb))));
}

void
MemorySystem::mmioRead(Addr addr, std::uint8_t *dst, Callback cb)
{
    route(addr).enqueueRead(lineAlign(addr), dst,
                            linked(addr, track(std::move(cb))));
}

void
MemorySystem::dmaWriteLine(Addr addr, const std::uint8_t *src, Callback cb)
{
    // DDIO: the device write allocates into the restricted LLC ways;
    // under contention the line may be evicted to DRAM before use.
    const Addr line = lineAlign(addr);
    const auto result =
        llc_.access(line, true, AllocClass::kDdio, /*full_line_store=*/true);
    writebackVictim(result);
    if (std::uint8_t *slot = llc_.dataPtr(line))
        std::memcpy(slot, src, kCacheLineSize);
    events_.scheduleIn(latencies_.store_commit, [this, cb = std::move(cb)]()
                           mutable { cb(events_.now()); });
}

void
MemorySystem::dmaReadLine(Addr addr, std::uint8_t *dst, Callback cb)
{
    // Device reads snoop the LLC (hit: serve from cache) and otherwise
    // fetch from DRAM without allocating.
    const Addr line = lineAlign(addr);
    if (const std::uint8_t *slot = llc_.dataPtr(line)) {
        std::memcpy(dst, slot, kCacheLineSize);
        events_.scheduleIn(latencies_.llc_hit, [this, cb = std::move(cb)]()
                               mutable { cb(events_.now()); });
        return;
    }
    route(line).enqueueRead(line, dst, linked(line, track(std::move(cb))));
}

void
MemorySystem::drain()
{
    events_.run();
}

void
MemorySystem::readSync(Addr addr, std::uint8_t *dst, std::size_t len)
{
    SD_ASSERT(isLineAligned(addr) && len % kCacheLineSize == 0,
              "sync ops are line-granular");
    for (std::size_t off = 0; off < len; off += kCacheLineSize) {
        bool done = false;
        readLine(addr + off, dst + off, [&done](Tick) { done = true; });
        while (!done)
            events_.run();
    }
}

void
MemorySystem::writeSync(Addr addr, const std::uint8_t *src, std::size_t len)
{
    SD_ASSERT(isLineAligned(addr) && len % kCacheLineSize == 0,
              "sync ops are line-granular");
    for (std::size_t off = 0; off < len; off += kCacheLineSize) {
        bool done = false;
        writeLine(addr + off, src + off, [&done](Tick) { done = true; });
        while (!done)
            events_.run();
    }
}

void
MemorySystem::flushSync(Addr addr, std::size_t len)
{
    for (Addr line = lineAlign(addr); line < addr + len;
         line += kCacheLineSize) {
        bool done = false;
        flushLine(line, [&done](Tick) { done = true; });
        while (!done)
            events_.run();
    }
}

} // namespace sd::cache
