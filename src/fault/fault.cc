#include "fault/fault.h"

#include <array>
#include <cstdlib>

#include "common/log.h"

namespace sd::fault {

namespace {

constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::kCount);

constexpr std::array<const char *, kSiteCount> kSiteNames = {
    "alert_storm",        "write_drain_delay", "free_pages_lie",
    "scratchpad_exhaust", "config_mem_exhaust", "cuckoo_conflict",
    "cuckoo_insert_fail", "net_loss",          "net_reorder",
    "ordered_fence",      "queue_full",        "lost_completion",
    "cxl_link_stall",     "cxl_timeout",
};

} // namespace

const char *
siteName(Site site)
{
    const auto i = static_cast<std::size_t>(site);
    return i < kSiteNames.size() ? kSiteNames[i] : "?";
}

std::optional<Site>
siteFromName(const std::string &name)
{
    for (std::size_t i = 0; i < kSiteNames.size(); ++i)
        if (name == kSiteNames[i])
            return static_cast<Site>(i);
    return std::nullopt;
}

void
FaultPlan::add(const FaultRule &rule)
{
    SD_ASSERT(rule.site < Site::kCount, "fault rule with invalid site");
    SD_ASSERT(rule.probability >= 0.0 && rule.probability <= 1.0,
              "fault probability out of [0,1]");
    sites_[static_cast<std::size_t>(rule.site)].rules.push_back(
        RuleState{rule, 0});
}

bool
FaultPlan::armed(Site site) const
{
    return !sites_[static_cast<std::size_t>(site)].rules.empty();
}

bool
FaultPlan::shouldInject(Site site, const FaultScope &scope)
{
    SiteState &state = sites_[static_cast<std::size_t>(site)];
    if (state.rules.empty())
        return false;
    ++state.triggers;
    // Advance each matching rule's trigger view first, then let the
    // first armed, non-exhausted matching rule decide. An unscoped
    // rule matches every trigger, so its numbering is the site-global
    // trigger count (bit-identical to the pre-topology behaviour); a
    // scoped rule numbers only its own device's triggers, so skip=N
    // means "the Nth visit on *that* device". Mismatched rules are
    // passed over without touching the RNG.
    for (RuleState &rs : state.rules)
        if (rs.rule.matches(scope))
            ++rs.seen;
    for (RuleState &rs : state.rules) {
        if (!rs.rule.matches(scope))
            continue;
        const std::uint64_t index = rs.seen - 1;
        if (index < rs.rule.skip || rs.fired >= rs.rule.count)
            continue;
        // The RNG advances only here, so inert rules never perturb
        // another rule's random stream (determinism contract).
        if (rs.rule.probability < 1.0 &&
            !rng_.chance(rs.rule.probability))
            return false;
        ++rs.fired;
        ++state.injected;
        return true;
    }
    return false;
}

std::uint64_t
FaultPlan::triggers(Site site) const
{
    return sites_[static_cast<std::size_t>(site)].triggers;
}

std::uint64_t
FaultPlan::injected(Site site) const
{
    return sites_[static_cast<std::size_t>(site)].injected;
}

std::uint64_t
FaultPlan::totalInjected() const
{
    std::uint64_t total = 0;
    for (const SiteState &state : sites_)
        total += state.injected;
    return total;
}

std::optional<FaultPlan>
FaultPlan::fromSpec(const std::string &spec, std::uint64_t seed)
{
    FaultPlan plan(seed);
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t end = std::min(spec.find(',', pos), spec.size());
        std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;

        FaultRule rule;

        // Optional device-scope prefix: "mem[ch]/" targets a channel
        // controller, "smartdimm[ch]/" every DIMM on a channel, and
        // "smartdimm[ch][dimm]/" one specific buffer device.
        const std::size_t slash = item.find('/');
        if (slash != std::string::npos) {
            const std::string prefix = item.substr(0, slash);
            item = item.substr(slash + 1);
            std::size_t open = prefix.find('[');
            const std::string kind = prefix.substr(
                0, std::min(open, prefix.size()));
            if (kind != "mem" && kind != "smartdimm" && kind != "cxl")
                return std::nullopt;
            int indices[2] = {-1, -1};
            int parsed = 0;
            std::size_t ppos = std::min(open, prefix.size());
            while (ppos < prefix.size()) {
                if (prefix[ppos] != '[' || parsed >= 2)
                    return std::nullopt;
                const std::size_t close = prefix.find(']', ppos);
                if (close == std::string::npos || close == ppos + 1)
                    return std::nullopt;
                const std::string num =
                    prefix.substr(ppos + 1, close - ppos - 1);
                char *num_end = nullptr;
                const long idx = std::strtol(num.c_str(), &num_end, 10);
                if (num_end != num.c_str() + num.size() || idx < 0)
                    return std::nullopt;
                indices[parsed++] = static_cast<int>(idx);
                ppos = close + 1;
            }
            if (parsed == 0 ||
                ((kind == "mem" || kind == "cxl") && parsed > 1))
                return std::nullopt;
            rule.channel = indices[0];
            rule.dimm = indices[1];
        }

        // First ':'-field is the site name; the rest are key=value.
        const std::size_t name_end = std::min(item.find(':'), item.size());
        const auto site = siteFromName(item.substr(0, name_end));
        if (!site)
            return std::nullopt;
        rule.site = *site;

        std::size_t fpos = name_end;
        while (fpos < item.size()) {
            ++fpos; // skip ':'
            const std::size_t fend =
                std::min(item.find(':', fpos), item.size());
            const std::string field = item.substr(fpos, fend - fpos);
            fpos = fend;
            const std::size_t eq = field.find('=');
            if (eq == std::string::npos)
                return std::nullopt;
            const std::string key = field.substr(0, eq);
            const std::string value = field.substr(eq + 1);
            char *parse_end = nullptr;
            if (key == "skip") {
                rule.skip = std::strtoull(value.c_str(), &parse_end, 0);
            } else if (key == "count") {
                rule.count = std::strtoull(value.c_str(), &parse_end, 0);
            } else if (key == "p") {
                rule.probability = std::strtod(value.c_str(), &parse_end);
                if (rule.probability < 0.0 || rule.probability > 1.0)
                    return std::nullopt;
            } else {
                return std::nullopt;
            }
            if (value.empty() || parse_end != value.c_str() + value.size())
                return std::nullopt;
        }
        plan.add(rule);
    }
    return plan;
}

void
FaultPlan::reportStats(trace::StatsBlock &block) const
{
    for (std::size_t i = 0; i < kSiteCount; ++i) {
        const SiteState &state = sites_[i];
        if (state.rules.empty() && state.triggers == 0)
            continue;
        const std::string prefix(kSiteNames[i]);
        block.scalar(prefix + ".triggers",
                     static_cast<double>(state.triggers));
        block.scalar(prefix + ".injected",
                     static_cast<double>(state.injected));
    }
}

} // namespace sd::fault
