/**
 * @file
 * Deterministic fault-injection registry (the chaos layer of the
 * recovery-path test harness). A FaultPlan is a list of rules, each
 * naming an injection *site* — a point in a component where a rare
 * hardware/software failure can be forced — plus a trigger window
 * (skip/count) and an optional per-trigger probability drawn from the
 * shared sd::Rng.
 *
 * Determinism contract: a plan's decisions are a pure function of
 * (seed, rule list, trigger sequence). Components call shouldInject()
 * from event-queue callbacks only, and the event queue orders
 * callbacks deterministically, so a run with the same seed and the
 * same workload replays bit-identically — including every injected
 * fault. The RNG is consumed *only* for rules with probability < 1 on
 * armed, non-exhausted triggers, so adding an inert rule never
 * perturbs another rule's stream.
 *
 * Components hold a `FaultPlan *` that defaults to nullptr; the null
 * check is the only cost on the fault-free fast path, and a run
 * without a plan is byte-identical to a build without this layer.
 */

#ifndef SD_FAULT_FAULT_H
#define SD_FAULT_FAULT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "trace/trace.h"

namespace sd::fault {

/** Injection sites threaded through the recovery-capable layers. */
enum class Site : std::uint8_t
{
    kAlertStorm = 0,    ///< mem: spurious ALERT_N on a good rdCAS (S13 storm)
    kWriteDrainDelay,   ///< mem: postpone entry into write-drain mode
    kFreePagesLie,      ///< smartdimm: freePages MMIO read reports zero
    kScratchpadExhaust, ///< smartdimm: registration page allocate fails
    kConfigMemExhaust,  ///< smartdimm: config-memory slot allocate fails
    kCuckooConflict,    ///< smartdimm: direct insert forced to displace
    kCuckooInsertFail,  ///< smartdimm: insert reports table failure
    kNetLoss,           ///< net: scripted segment drop episode
    kNetReorder,        ///< net: scripted segment reorder
    kOrderedFence,      ///< compcpy: ordered-mode fence elided for a window
    kQueueFull,         ///< compcpy: work-queue submit rejected as full
    kLostCompletion,    ///< compcpy: completion record drop (poll recovery)
    kCxlLinkStall,      ///< mem: CXL link transfer stalled (retry penalty)
    kCxlTimeout,        ///< compcpy: withheld CXL response never arrives
    kCount,
};

/** Stable short name (used in specs, stats dumps and test output). */
const char *siteName(Site site);

/** Inverse of siteName(). @return nullopt for unknown names. */
std::optional<Site> siteFromName(const std::string &name);

/**
 * Where in the topology a trigger fired. Components owned by a
 * specific device pass their coordinates; shared/host-side components
 * pass the default (unplaced) scope. -1 means "not applicable".
 */
struct FaultScope
{
    int channel = -1;
    int dimm = -1;
};

/**
 * One injection rule. A site may carry several rules; the first armed,
 * non-exhausted rule *matching the trigger's scope* decides each
 * trigger. A rule's channel/dimm of -1 is a wildcard, so unscoped
 * rules behave exactly as before the topology existed; a scoped rule
 * (e.g. channel=1, dimm=0) only fires for triggers reported from that
 * device, which is how the chaos soak exercises per-device faults.
 */
struct FaultRule
{
    Site site = Site::kCount;
    std::uint64_t skip = 0;   ///< ignore the first N triggers at the site
    std::uint64_t count = ~0ULL; ///< fire at most this many times
    double probability = 1.0; ///< per-trigger chance once armed
    int channel = -1;         ///< restrict to one channel (-1 = any)
    int dimm = -1;            ///< restrict to one DIMM slot (-1 = any)

    /** @return true when this rule applies to a trigger at @p scope. */
    bool
    matches(const FaultScope &scope) const
    {
        return (channel < 0 || channel == scope.channel) &&
               (dimm < 0 || dimm == scope.dimm);
    }
};

/**
 * A seeded, deterministic fault plan. Thread through components with
 * setFaultPlan(); a default-constructed plan (or nullptr) injects
 * nothing.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    explicit FaultPlan(std::uint64_t seed) : rng_(seed) {}

    /** Append a rule. Rules at the same site evaluate in add order. */
    void add(const FaultRule &rule);

    /** Convenience: add {site, skip, count, probability}. */
    void
    add(Site site, std::uint64_t skip = 0, std::uint64_t count = ~0ULL,
        double probability = 1.0)
    {
        add(FaultRule{site, skip, count, probability});
    }

    /** @return true when at least one rule targets @p site. */
    bool armed(Site site) const;

    /**
     * Called by a component at an injection site. Counts the trigger
     * and decides — deterministically — whether to inject the fault.
     * Rules whose scope does not match are skipped without touching
     * the RNG, so scoping one device's rule never perturbs another
     * rule's random stream (the determinism contract extends to
     * topology scopes).
     */
    bool shouldInject(Site site, const FaultScope &scope = {});

    /** Triggers seen at @p site (fault-free visits included). */
    std::uint64_t triggers(Site site) const;

    /** Faults actually injected at @p site. */
    std::uint64_t injected(Site site) const;

    /** Sum of injected() over all sites. */
    std::uint64_t totalInjected() const;

    /**
     * Parse a plan spec: comma-separated rules of the form
     *   [scope/]site[:skip=N][:count=M][:p=F]
     * e.g. "alert_storm:count=10:p=0.5,free_pages_lie:count=2".
     * The optional scope prefix pins a rule to one device in the
     * topology: `mem[1]/alert_storm` targets channel 1's controller,
     * `smartdimm[0][1]/free_pages_lie` targets channel 0, DIMM 1, and
     * `smartdimm[2]/cuckoo_conflict` targets every DIMM on channel 2.
     * This is the format of the SD_FAULT_PLAN env knob the test
     * harnesses accept. @return nullopt on malformed input.
     */
    static std::optional<FaultPlan> fromSpec(const std::string &spec,
                                             std::uint64_t seed);

    /** Contribute per-site trigger/injected counters to a dump. */
    void reportStats(trace::StatsBlock &block) const;

  private:
    struct RuleState
    {
        FaultRule rule;
        std::uint64_t fired = 0;
        std::uint64_t seen = 0; ///< triggers matching this rule's scope
    };

    struct SiteState
    {
        std::vector<RuleState> rules;
        std::uint64_t triggers = 0;
        std::uint64_t injected = 0;
    };

    Rng rng_;
    SiteState sites_[static_cast<std::size_t>(Site::kCount)];
};

} // namespace sd::fault

#endif // SD_FAULT_FAULT_H
