/**
 * @file
 * Fig. 3: memory-bandwidth utilisation of an HTTPS server normalised
 * to an HTTP server doing equivalent transfers, swept over concurrent
 * connections. At high connection counts the TLS streams thrash the
 * LLC and round-trip DRAM (Obs. 3), inflating HTTPS bandwidth up to
 * ~2.5x the HTTP baseline.
 */

#include <cstdio>

#include "app/server_model.h"
#include "bench/bench_util.h"

using namespace sd;

int
main()
{
    bench::header("Figure 3",
                  "HTTPS memory bandwidth normalised to HTTP vs "
                  "concurrent connections");
    std::printf("%-12s %12s %12s %10s %8s\n", "connections",
                "HTTP_GBps", "HTTPS_GBps", "HTTPS/HTTP", "leak");

    for (unsigned conns : {64u, 128u, 256u, 512u, 768u, 1024u, 1536u,
                           2048u}) {
        app::ServerConfig http;
        http.ulp = offload::Ulp::kNone;
        http.connections = conns;

        app::ServerConfig https = http;
        https.ulp = offload::Ulp::kTlsEncrypt;
        https.placement = offload::PlacementKind::kCpu;

        const auto http_r = app::evaluateServer(http);
        const auto https_r = app::evaluateServer(https);
        std::printf("%-12u %12.2f %12.2f %10.2f %8.2f\n", conns,
                    http_r.mem_bandwidth_gbps,
                    https_r.mem_bandwidth_gbps,
                    https_r.mem_bandwidth_gbps /
                        http_r.mem_bandwidth_gbps,
                    https_r.leak_fraction);
    }
    std::printf("\nPaper shape: ratio near 1 for few connections, "
                "rising to ~2.5x as connections grow.\n");
    return 0;
}
