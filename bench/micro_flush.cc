/**
 * @file
 * Sec. IV-A microbenchmark: flushing a 4 KB buffer is ~50% faster
 * when the data already resides in DRAM (nothing dirty to write
 * back) than when it sits modified in the LLC — the reason CompCpy's
 * sbuf flush is cheap when offload is enabled under contention.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"

using namespace sd;

namespace {

/** Flush one page and return elapsed ticks. */
Tick
flushPage(bench::DeviceRig &rig, Addr page)
{
    const Tick start = rig.events.now();
    rig.memory->flushSync(page, kPageSize);
    return rig.events.now() - start;
}

} // namespace

int
main()
{
    bench::header("Flush microbenchmark (Sec. IV-A)",
                  "clflush of 4 KB: cached-dirty vs already-in-DRAM");

    bench::DeviceRig rig;
    Rng rng(5);
    std::vector<std::uint8_t> data(kPageSize);

    double dirty_ns = 0;
    double clean_ns = 0;
    constexpr int kTrials = 32;
    for (int t = 0; t < kTrials; ++t) {
        const Addr page = (1ULL << 20) + static_cast<Addr>(t) * kPageSize;

        // Case 1: page dirty in the LLC (just written by the app).
        rng.fill(data.data(), data.size());
        rig.memory->writeSync(page, data.data(), data.size());
        dirty_ns += static_cast<double>(flushPage(rig, page)) / 1e3;

        // Case 2: page already in DRAM (previously flushed; cache
        // holds nothing for it).
        clean_ns += static_cast<double>(flushPage(rig, page)) / 1e3;
    }
    dirty_ns /= kTrials;
    clean_ns /= kTrials;

    std::printf("flush 4KB, lines dirty in LLC : %8.1f ns\n", dirty_ns);
    std::printf("flush 4KB, data already in DRAM: %8.1f ns\n", clean_ns);
    std::printf("speedup when already in DRAM  : %8.1f%%\n",
                (1.0 - clean_ns / dirty_ns) * 100.0);
    std::printf("\nPaper anchor: ~50%% faster when the data is already\n"
                "in DRAM — the common case when offload is enabled\n"
                "under LLC contention.\n");
    return 0;
}
