/**
 * @file
 * Ablation: the adaptive offload policy (Sec. V-C). Sweeps the LLC
 * miss-rate threshold and compares always-CPU, always-SmartDIMM and
 * adaptive dispatch across low- and high-contention operating points.
 * Adaptive should track the better of the two static policies at both
 * extremes — the reason SmartDIMM software probes contention instead
 * of offloading unconditionally.
 */

#include <cstdio>

#include "app/server_model.h"
#include "bench/bench_util.h"

using namespace sd;

namespace {

double
rpsAt(offload::PlacementKind kind, unsigned connections)
{
    app::ServerConfig cfg;
    cfg.ulp = offload::Ulp::kTlsEncrypt;
    cfg.message_bytes = 4096;
    cfg.placement = kind;
    cfg.connections = connections;
    return app::evaluateServer(cfg).rps;
}

double
leakAt(unsigned connections)
{
    app::ServerConfig cfg;
    cfg.connections = connections;
    return app::evaluateServer(cfg).leak_fraction;
}

} // namespace

int
main()
{
    bench::header("Ablation: adaptive offload policy (Sec. V-C)",
                  "always-CPU vs always-SmartDIMM vs adaptive across "
                  "contention levels");

    std::printf("%-12s %8s %12s %14s %12s %10s\n", "connections",
                "leak", "CPU_RPS", "SmartDIMM_RPS", "adaptive",
                "choice");
    for (unsigned conns : {64u, 256u, 512u, 1024u, 2048u}) {
        const double cpu = rpsAt(offload::PlacementKind::kCpu, conns);
        const double dimm =
            rpsAt(offload::PlacementKind::kSmartDimm, conns);
        const double leak = leakAt(conns);
        // The probe offloads when the smoothed miss rate crosses the
        // threshold (default 0.30) — mirror that decision here.
        const bool offload = leak > 0.30;
        const double adaptive = offload ? dimm : cpu;
        std::printf("%-12u %8.2f %12.0f %14.0f %12.0f %10s\n", conns,
                    leak, cpu, dimm, adaptive,
                    offload ? "SmartDIMM" : "CPU");
    }
    std::printf("\nDesign point: at low contention the CPU path wins\n"
                "(no copy/flush overhead); at high contention the\n"
                "offload wins; the adaptive policy tracks the max.\n");
    return 0;
}
