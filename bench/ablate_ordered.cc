/**
 * @file
 * Ablation: ordered vs unordered CompCpy (Alg. 2 lines 24-30). The
 * ordered mode fences between 64-byte copies so streaming DSAs
 * (Deflate) see lines in order; the fences serialise the copy loop
 * and cost wall-clock time on the device model. Size-preserving DSAs
 * (TLS) don't need them — the stride-4 H powers absorb reordering.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"

using namespace sd;

namespace {

Tick
runCopy(bool ordered)
{
    bench::DeviceRig rig;
    Rng rng(21);
    constexpr std::size_t kMsg = 4096;
    constexpr int kCalls = 24;

    Tick total = 0;
    for (int i = 0; i < kCalls; ++i) {
        const Addr sbuf =
            (1ULL << 20) + static_cast<Addr>(i) * 8 * kPageSize;
        const Addr dbuf = sbuf + 4 * kPageSize;
        std::vector<std::uint8_t> data(kMsg);
        rng.fill(data.data(), data.size());
        rig.memory->writeSync(sbuf, data.data(), data.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = kMsg;
        params.ordered = ordered;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 500 + static_cast<std::uint64_t>(i);
        rng.fill(params.key, sizeof(params.key));
        rng.fill(params.iv.data(), params.iv.size());

        const Tick start = rig.events.now();
        rig.engine.run(params);
        total += rig.events.now() - start;
        rig.engine.useSync(dbuf, kMsg + kPageSize);
    }
    return total / kCalls;
}

} // namespace

int
main()
{
    bench::header("Ablation: ordered vs unordered CompCpy (Alg. 2)",
                  "per-call wall clock on the device model");

    const Tick unordered = runCopy(false);
    const Tick ordered = runCopy(true);
    std::printf("unordered CompCpy (TLS-style)     : %8.2f us\n",
                static_cast<double>(unordered) / 1e6);
    std::printf("ordered CompCpy (Deflate-style)   : %8.2f us\n",
                static_cast<double>(ordered) / 1e6);
    std::printf("fence overhead                    : %8.1f%%\n",
                (static_cast<double>(ordered) /
                     static_cast<double>(unordered) -
                 1.0) * 100.0);
    std::printf("\nDesign point: only non-size-preserving streaming\n"
                "ULPs pay the ordering fences; AES-GCM's positional\n"
                "GHASH makes the TLS DSA order-oblivious.\n");
    return 0;
}
