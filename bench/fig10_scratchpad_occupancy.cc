/**
 * @file
 * Fig. 10: Scratchpad occupancy over time for different LLC
 * provisionings (Intel CAT way-limiting). Occupancy stabilises at an
 * equilibrium where LLC writebacks self-recycle pages as fast as new
 * offloads allocate them; a more contended (smaller) LLC writes back
 * sooner, so the equilibrium sits lower.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"

using namespace sd;

namespace {

/** Run a CompCpy stream against a CAT-limited LLC and sample the
 *  scratchpad occupancy; natural evictions (not explicit USE flushes)
 *  do the recycling. */
void
runProvision(std::size_t llc_bytes, const char *label)
{
    bench::DeviceRig rig(llc_bytes);
    Rng rng(7);
    constexpr std::size_t kMsg = 4096;
    constexpr int kOffloads = 1200;

    std::printf("\nLLC %-6s: offload -> scratchpad occupancy (KB)\n",
                label);

    std::vector<std::size_t> samples;
    std::uint64_t message_id = 1;
    for (int i = 0; i < kOffloads; ++i) {
        const Addr sbuf =
            (1ULL << 20) + static_cast<Addr>(i) * 2 * kPageSize * 3;
        const Addr dbuf = sbuf + kPageSize * 3;
        std::vector<std::uint8_t> data(kMsg);
        rng.fill(data.data(), data.size());
        rig.memory->writeSync(sbuf, data.data(), data.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = kMsg;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = message_id++;
        rng.fill(params.key, sizeof(params.key));
        rng.fill(params.iv.data(), params.iv.size());

        rig.engine.run(params);
        // No explicit USE flush: recycling relies on the LLC's own
        // capacity evictions of the dirty destination lines, exactly
        // the Self-Recycle equilibrium of Sec. IV-B.
        if (i % 60 == 59)
            samples.push_back(rig.dimm.scratchpad().occupancyBytes());
    }

    for (std::size_t i = 0; i < samples.size(); ++i)
        std::printf("  t=%3zu occupancy=%7.1f KB\n", (i + 1) * 60,
                    static_cast<double>(samples[i]) / 1024.0);

    const auto &sp = rig.dimm.scratchpad().stats();
    std::printf("  equilibrium=%.1f KB peak=%.1f KB self_recycles=%llu "
                "force_recycles=%llu\n",
                static_cast<double>(samples.back()) / 1024.0,
                static_cast<double>(sp.peak_pages * kPageSize) / 1024.0,
                static_cast<unsigned long long>(sp.self_recycles),
                static_cast<unsigned long long>(sp.force_recycles));

    sd::trace::StatsRegistry registry;
    rig.registerStats(registry);
    const std::size_t equilibrium = samples.back();
    registry.add("occupancy", [&](sd::trace::StatsBlock &block) {
        block.scalar("equilibrium_bytes",
                     static_cast<double>(equilibrium));
        block.scalar("samples", static_cast<double>(samples.size()));
    });
    bench::writeStatsJson(std::string("fig10_") + label, registry);
}

} // namespace

int
main()
{
    bench::header("Figure 10",
                  "scratchpad occupancy equilibrium vs LLC "
                  "provisioning (CAT)");
    // The paper contends 50 MB / 25 MB / 10 MB LLC slices; the rig
    // scales the same ratios down (its CompCpy stream is a single
    // core's) — the equilibrium ordering is the result under test.
    runProvision(6ull << 20, "large");
    runProvision(3ull << 20, "medium");
    runProvision(1ull << 20, "small");

    std::printf("\nPaper shape: every provisioning reaches a stable\n"
                "equilibrium; smaller (more contended) LLCs stabilise\n"
                "at proportionally lower scratchpad occupancy, and\n"
                "Force-Recycle stays at (near) zero.\n");
    return 0;
}
