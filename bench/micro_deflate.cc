/**
 * @file
 * Deflate-path microbenchmarks (google-benchmark): the software LZ77
 * hash-chain matcher (greedy and lazy), full Deflate compression and
 * the hardware deflate pipeline model. Emits BENCH_deflate.json with
 * the active kernel tier so CI can archive per-tier numbers alongside
 * BENCH_crypto.json. These are simulator-implementation numbers; the
 * placement cost model carries the calibrated hardware rates.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "compress/deflate.h"
#include "compress/hw_deflate.h"
#include "compress/lz77.h"

using namespace sd;
using namespace sd::compress;

namespace {

/**
 * Compressible-but-not-trivial payload: zipf-ish repeated phrases over
 * random filler, the same flavour the figure benches use.
 */
std::vector<std::uint8_t>
makePayload(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> data(len);
    rng.fill(data.data(), data.size());
    static const char phrase[] = "GET /index.html HTTP/1.1\r\nHost: ";
    for (std::size_t off = 0; off + sizeof(phrase) < len;
         off += 97 + rng.below(160))
        std::memcpy(data.data() + off, phrase, sizeof(phrase) - 1);
    return data;
}

void
BM_Lz77Greedy4K(benchmark::State &state)
{
    const auto data = makePayload(4096, 11);
    Lz77Config cfg;
    cfg.lazy = false;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lz77Compress(data.data(), data.size(), cfg));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Lz77Greedy4K);

void
BM_Lz77Lazy4K(benchmark::State &state)
{
    const auto data = makePayload(4096, 11);
    Lz77Config cfg;
    cfg.lazy = true;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lz77Compress(data.data(), data.size(), cfg));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Lz77Lazy4K);

void
BM_Deflate4K(benchmark::State &state)
{
    const auto data = makePayload(4096, 12);
    for (auto _ : state) {
        benchmark::DoNotOptimize(deflateCompress(
            data.data(), data.size(), DeflateStrategy::kFixed));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Deflate4K);

void
BM_HwDeflate4K(benchmark::State &state)
{
    const auto data = makePayload(4096, 13);
    HwDeflateConfig cfg;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hwDeflateCompress(data.data(), data.size(), cfg));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_HwDeflate4K);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const auto data = makePayload(4096, 11);
    Lz77Config lazy_cfg;
    lazy_cfg.lazy = true;
    HwDeflateConfig hw_cfg;

    std::vector<bench::KernelBenchRow> rows;
    rows.push_back(bench::timeKernelOp("lz77_lazy_4k", 4096, 4096, [&] {
        benchmark::DoNotOptimize(
            lz77Compress(data.data(), data.size(), lazy_cfg));
    }));
    rows.push_back(bench::timeKernelOp("deflate_4k", 4096, 4096, [&] {
        benchmark::DoNotOptimize(deflateCompress(
            data.data(), data.size(), DeflateStrategy::kFixed));
    }));
    rows.push_back(bench::timeKernelOp("hw_deflate_4k", 4096, 4096, [&] {
        benchmark::DoNotOptimize(
            hwDeflateCompress(data.data(), data.size(), hw_cfg));
    }));
    bench::writeKernelBenchJson("BENCH_deflate.json", rows);
    return 0;
}
