/**
 * @file
 * Table I: performance isolation when secure Nginx co-runs with 10
 * mcf-like instances on separate cores. Reports the Nginx RPS
 * slowdown and the antagonist slowdown per placement, each relative
 * to its solo run, plus the absolute co-run RPS the paper quotes
 * (SmartDIMM 569609 vs SmartNIC 377879).
 */

#include <cstdio>

#include "app/server_model.h"
#include "bench/bench_util.h"

using namespace sd;

int
main()
{
    bench::header("Table I",
                  "co-run slowdowns: secure Nginx + 10x mcf-like "
                  "antagonists");
    std::printf("%-12s %12s %12s %14s %14s\n", "placement", "solo_RPS",
                "corun_RPS", "nginx_slowdn", "mcf_slowdn");

    for (auto kind :
         {offload::PlacementKind::kCpu, offload::PlacementKind::kSmartNic,
          offload::PlacementKind::kQuickAssist,
          offload::PlacementKind::kSmartDimm}) {
        app::ServerConfig solo;
        solo.ulp = offload::Ulp::kTlsEncrypt;
        solo.message_bytes = 4096;
        solo.placement = kind;

        app::ServerConfig corun = solo;
        corun.antagonist_mb = 1800;      // mcf-class footprint
        corun.antagonist_instances = 10; // one per spare core

        const auto s = app::evaluateServer(solo);
        const auto c = app::evaluateServer(corun);
        const double nginx_slowdown = 1.0 - c.rps / s.rps;
        std::printf("%-12s %12.0f %12.0f %13.1f%% %13.1f%%\n",
                    s.placement_name.c_str(), s.rps, c.rps,
                    nginx_slowdown * 100.0,
                    c.antagonist_slowdown * 100.0);
    }
    std::printf(
        "\nPaper anchors (Nginx / mcf slowdowns): CPU 15.8/15.5%%,\n"
        "SmartNIC 7.3/8.7%%, QuickAssist 28.7/37.9%%, SmartDIMM\n"
        "9.5/10.3%%; absolute co-run RPS: SmartDIMM 569609 vs\n"
        "SmartNIC 377879 — SmartDIMM trades slightly more mcf\n"
        "interference for much higher absolute throughput.\n");
    return 0;
}
