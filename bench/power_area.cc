/**
 * @file
 * Sec. VII-D: power and area of the SmartDIMM buffer device. Runs a
 * TLS offload stream through the device model, feeds the activity
 * counters to the analytic energy model, and reports the dynamic
 * power at the observed channel utilisation, the extrapolated power
 * at full channel rate, and the FPGA fabric shares.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "smartdimm/power_model.h"

using namespace sd;

int
main()
{
    bench::header("Power & Area (Sec. VII-D)",
                  "buffer-device power at observed and full channel "
                  "utilisation");

    bench::DeviceRig rig;
    Rng rng(3);
    constexpr std::size_t kMsg = 16384;
    constexpr int kOffloads = 60;

    const Tick start = rig.events.now();
    std::uint64_t message_id = 1;
    for (int i = 0; i < kOffloads; ++i) {
        const Addr sbuf =
            (1ULL << 20) + static_cast<Addr>(i) * 16 * kPageSize;
        const Addr dbuf = sbuf + 8 * kPageSize;
        std::vector<std::uint8_t> data(kMsg);
        rng.fill(data.data(), data.size());
        rig.memory->writeSync(sbuf, data.data(), data.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = kMsg;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = message_id++;
        rng.fill(params.key, sizeof(params.key));
        rng.fill(params.iv.data(), params.iv.size());
        rig.engine.run(params);
        rig.engine.useSync(dbuf, kMsg + kPageSize);
    }
    const Tick window = rig.events.now() - start;

    const auto report = smartdimm::estimatePower(
        rig.dimm, window, rig.memory->dramBytes());

    std::printf("%-26s %10s %12s\n", "component", "watts", "fabric_%");
    for (const auto &row : report.rows)
        std::printf("%-26s %10.3f %12.1f\n", row.component.c_str(),
                    row.watts, row.fpga_luts_pct);
    std::printf("%-26s %10.3f %12.1f\n", "total", report.dynamic_watts,
                report.fpga_resources_pct);
    std::printf("\nchannel utilisation during offload: %.1f%%\n",
                report.channel_utilization * 100.0);
    std::printf("extrapolated dynamic power at 100%% channel: %.2f W\n",
                smartdimm::peakDynamicWatts());
    std::printf(
        "\nPaper anchors: 4.78 W dynamic at full channel utilisation;\n"
        "<30%% channel utilisation during TLS offload; ~0.92 W average\n"
        "power increase; TLS offload uses ~21.8%% of the FPGA fabric.\n");
    return 0;
}
