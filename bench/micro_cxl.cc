/**
 * @file
 * CXL.mem far-tier microbenchmark: TLS-4K CompCpy offload throughput
 * on a SmartDIMM behind a CXL link, swept over link round-trip
 * latency (local DDR4, then 300/600/1500 ns), against the CPU path
 * reaching the same far-homed data.
 *
 * Two views per point:
 *  - measured: a fixed batch of records driven closed-loop through a
 *    far slot's withheld-response work queue in the simulator —
 *    doorbells, registration MMIO and completions all cross the
 *    CxlLink flit queue, and the poll traffic the withheld read saved
 *    is reported from the queue stats;
 *  - modeled: the offload cost model's CXL.mem placement vs the CPU
 *    placement with the same link latency added to every demand miss
 *    (speedup_vs_cpu = CPU cycles / tier cycles per message).
 *
 * Paper anchor: near-data ULP execution pays off *more* at far-memory
 * latencies — the CPU path degrades with every miss paying the link
 * round trip while the near-data transform only pays it on its
 * control path, so the CXL tier must beat the CPU path at >= 600 ns
 * and the advantage must grow with latency.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "offload/placement.h"
#include "topo/dispatcher.h"

using namespace sd;
using compcpy::CompletionRecord;
using compcpy::Descriptor;

namespace {

constexpr std::size_t kOffloads = 192;
constexpr std::size_t kRecordBytes = 4096; // TLS-4K

struct Row
{
    char name[12] = "";
    double link_ns = 0; ///< 0 == locally attached
    double ops_per_sec = 0;
    double p50_us = 0;
    double p99_us = 0;
    double speedup_vs_cpu = 0; ///< model: CPU cycles / tier cycles
    std::uint64_t polls_saved = 0;
    std::uint64_t poll_bytes_saved = 0;
    std::uint64_t withheld_completions = 0;
    std::uint64_t link_transfers = 0;
};

Tick
percentile(const std::vector<Tick> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

/** Modeled CPU-path vs tier-path cycles per record at @p link_ns. */
double
modeledSpeedup(double link_ns)
{
    offload::CostModel model;
    model.cxl.round_trip_ns = link_ns > 0 ? link_ns : 100.0;
    offload::LoadContext ctx;
    ctx.far_mem_extra_ns = link_ns; // data homed on the far tier
    const auto cpu =
        offload::makePlacement(offload::PlacementKind::kCpu, model);
    const auto tier = offload::makePlacement(
        link_ns > 0 ? offload::PlacementKind::kCxlMem
                    : offload::PlacementKind::kSmartDimm,
        model);
    const double cpu_cycles =
        cpu->messageCost(offload::Ulp::kTlsEncrypt, kRecordBytes, ctx)
            .cpu_cycles;
    const double tier_cycles =
        tier->messageCost(offload::Ulp::kTlsEncrypt, kRecordBytes, ctx)
            .cpu_cycles;
    return cpu_cycles / tier_cycles;
}

Row
runPoint(const char *name, double link_ns)
{
    topo::TopologySpec spec;
    spec.channels = 1;
    if (link_ns > 0) {
        spec.cxl_channels = 1;
        spec.cxl_link.round_trip_ns = link_ns;
    }
    topo::Topology topo(spec);
    topo::ShardDispatcher dispatcher(topo);
    EventQueue &events = topo.events();

    // All offloads target the measured tier's device: slot 0 locally,
    // the far channel's slot when a link is configured.
    const unsigned slot = link_ns > 0 ? 1u : 0u;
    const std::size_t window = 4;

    Rng rng(31);
    std::vector<std::uint8_t> payload(kRecordBytes);
    rng.fill(payload.data(), payload.size());
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));

    std::size_t next = 0;
    std::size_t done = 0;
    std::vector<Tick> latencies;
    latencies.reserve(kOffloads);

    std::function<void()> submitNext = [&] {
        if (next >= kOffloads)
            return;
        const std::size_t i = next++;
        topo::Topology::Slot &dev = topo.slot(slot);

        compcpy::CompCpyParams params;
        params.size = kRecordBytes;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 1 + i;
        std::memcpy(params.key, key, sizeof(key));
        params.iv[4] = static_cast<std::uint8_t>(i >> 8);
        params.iv[5] = static_cast<std::uint8_t>(i);
        params.sbuf = dev.driver.alloc(kRecordBytes);
        const std::size_t dbytes =
            compcpy::CompCpyEngine::destPages(params) * kPageSize;
        params.dbuf = dev.driver.alloc(dbytes);
        topo.store().write(params.sbuf, payload.data(),
                           payload.size());

        auto reap = [&, params, dbytes](
                        const CompletionRecord &record) {
            latencies.push_back(record.completed - record.submitted);
            ++done;
            topo.slot(slot).driver.release(params.sbuf, params.size);
            topo.slot(slot).driver.release(params.dbuf, dbytes);
            submitNext();
        };
        if (!dispatcher.submit(slot, Descriptor::single(params), 0,
                               reap))
            dispatcher.queue(slot).submitForce(
                Descriptor::single(params), 0, reap);
    };

    for (std::size_t i = 0; i < window && next < kOffloads; ++i)
        submitNext();
    events.run();
    const Tick elapsed = events.now();

    Row row;
    std::snprintf(row.name, sizeof(row.name), "%s", name);
    row.link_ns = link_ns;
    row.ops_per_sec = done == kOffloads
                          ? static_cast<double>(kOffloads) * 1e12 /
                                static_cast<double>(elapsed)
                          : 0;
    std::sort(latencies.begin(), latencies.end());
    row.p50_us = static_cast<double>(percentile(latencies, 0.50)) / 1e6;
    row.p99_us = static_cast<double>(percentile(latencies, 0.99)) / 1e6;
    row.speedup_vs_cpu = modeledSpeedup(link_ns);

    const compcpy::WorkQueueStats &qs =
        dispatcher.queue(slot).stats();
    row.polls_saved = qs.polls_saved;
    row.poll_bytes_saved = qs.poll_bytes_saved;
    row.withheld_completions = qs.withheld_completions;
    if (link_ns > 0)
        row.link_transfers =
            topo.cxlLink(1)->stats().transfers;
    return row;
}

void
writeJson(const std::vector<Row> &rows)
{
    std::ofstream os("BENCH_cxl.json");
    if (!os) {
        std::printf("could not write BENCH_cxl.json\n");
        return;
    }
    os << "{\n  \"offloads\": " << kOffloads
       << ",\n  \"record_bytes\": " << kRecordBytes
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"name\": \"" << r.name << "\", "
           << "\"link_ns\": " << r.link_ns << ", "
           << "\"ops_per_sec\": " << r.ops_per_sec << ", "
           << "\"p50_us\": " << r.p50_us << ", "
           << "\"p99_us\": " << r.p99_us << ", "
           << "\"speedup_vs_cpu\": " << r.speedup_vs_cpu << ", "
           << "\"polls_saved\": " << r.polls_saved << ", "
           << "\"poll_bytes_saved\": " << r.poll_bytes_saved << ", "
           << "\"withheld_completions\": " << r.withheld_completions
           << ", "
           << "\"link_transfers\": " << r.link_transfers << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote BENCH_cxl.json\n");
}

} // namespace

int
main()
{
    bench::header("CXL.mem far-tier microbenchmark (ISSUE 10)",
                  "TLS-4K CompCpy on a CXL-attached SmartDIMM, "
                  "local vs 300/600/1500 ns");

    std::vector<Row> rows;
    std::printf("%-10s %8s %14s %9s %9s %9s %12s\n", "point",
                "link ns", "offloads/s", "p50(us)", "p99(us)",
                "vs CPU", "polls saved");
    const struct
    {
        const char *name;
        double link_ns;
    } points[] = {
        {"local", 0},
        {"cxl300", 300},
        {"cxl600", 600},
        {"cxl1500", 1500},
    };
    for (const auto &point : points) {
        Row row = runPoint(point.name, point.link_ns);
        std::printf("%-10s %8.0f %14.0f %9.2f %9.2f %8.2fx %12llu\n",
                    row.name, row.link_ns, row.ops_per_sec, row.p50_us,
                    row.p99_us, row.speedup_vs_cpu,
                    static_cast<unsigned long long>(row.polls_saved));
        rows.push_back(row);
    }
    writeJson(rows);

    std::printf(
        "\nPaper anchor: the CPU path pays the link round trip on\n"
        "every demand miss of the far-homed working set, while the\n"
        "near-data transform pays it only on its control path — the\n"
        "CXL tier must beat the CPU path at >= 600 ns and the\n"
        "advantage must grow with link latency. The withheld-response\n"
        "completion eliminates host polling: saved poll reads (and\n"
        "their MMIO bytes) are reported per point.\n");
    return 0;
}
