/**
 * @file
 * Sec. IV-D microbenchmark: the time between the first rdCAS of a
 * CompCpy's source buffer and the first wrCAS to its destination
 * buffer. Write batching in the memory controller, cache-coherency
 * overhead and rd/wr bus turnarounds give the DSA a budget the paper
 * measured at over 1 us on the AxDIMM — far more than the DSA's
 * per-line latency, which is why inline offload needs no
 * notification mechanism.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "mem/dram_command.h"

using namespace sd;

namespace {

class SlackProbe : public mem::CommandObserver
{
  public:
    void
    observe(const mem::DdrCommand &cmd) override
    {
        if (cmd.type == mem::DdrCommandType::kReadCas &&
            cmd.addr >= sbuf && cmd.addr < sbuf + window &&
            first_read == 0)
            first_read = cmd.issue;
        if (cmd.type == mem::DdrCommandType::kWriteCas &&
            cmd.addr >= dbuf && cmd.addr < dbuf + window &&
            first_write == 0)
            first_write = cmd.issue;
    }

    Addr sbuf = 0;
    Addr dbuf = 0;
    std::size_t window = 0;
    Tick first_read = 0;
    Tick first_write = 0;
};

} // namespace

int
main()
{
    bench::header("rdCAS->wrCAS slack (Sec. IV-D)",
                  "time budget the DSA has per cacheline before the "
                  "destination writes back");

    double total_us = 0;
    double min_us = 1e9;
    constexpr int kTrials = 12;
    constexpr std::size_t kMsg = 4096;

    for (int t = 0; t < kTrials; ++t) {
        bench::DeviceRig rig;
        SlackProbe probe;
        probe.sbuf = (1ULL << 20);
        probe.dbuf = (1ULL << 20) + (8ULL << 20);
        probe.window = kMsg;
        rig.memory->controller(0).setObserver(&probe);

        Rng rng(10 + t);
        std::vector<std::uint8_t> data(kMsg);
        rng.fill(data.data(), data.size());
        rig.memory->writeSync(probe.sbuf, data.data(), data.size());

        compcpy::CompCpyParams params;
        params.sbuf = probe.sbuf;
        params.dbuf = probe.dbuf;
        params.size = kMsg;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 77 + t;
        rng.fill(params.key, sizeof(params.key));
        rng.fill(params.iv.data(), params.iv.size());

        rig.engine.run(params);
        rig.engine.useSync(probe.dbuf, kMsg + kPageSize);

        const double slack_us =
            static_cast<double>(probe.first_write - probe.first_read) /
            1e6;
        total_us += slack_us;
        min_us = std::min(min_us, slack_us);
    }

    const double dsa_latency_us =
        24.0 * 2.5e-3; // 24 buffer cycles at 400 MHz
    std::printf("average slack: %8.3f us\n", total_us / kTrials);
    std::printf("minimum slack: %8.3f us\n", min_us);
    std::printf("DSA per-line latency: %.3f us\n", dsa_latency_us);
    std::printf("margin (min slack / DSA latency): %.0fx\n",
                min_us / dsa_latency_us);
    std::printf("\nPaper anchor: the measured budget exceeds 1 us on\n"
                "the AxDIMM prototype, so the optimistic no-polling\n"
                "completion model holds and ALERT_N retries stay rare.\n");
    return 0;
}
