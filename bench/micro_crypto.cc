/**
 * @file
 * Substrate throughput microbenchmarks (google-benchmark): the
 * functional AES-GCM and Deflate implementations, the incremental
 * out-of-order GCM, and the end-to-end device-level CompCpy. These
 * are simulator-implementation numbers (the placement cost model
 * carries the calibrated hardware rates), tracked to keep the repo's
 * own performance honest.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "crypto/aes_gcm.h"
#include "crypto/tls_record.h"

using namespace sd;
using namespace sd::crypto;

namespace {

void
BM_AesBlock(benchmark::State &state)
{
    Rng rng(1);
    std::uint8_t key[16];
    rng.fill(key, 16);
    Aes aes(key, Aes::KeySize::k128);
    std::uint8_t block[16] = {};
    for (auto _ : state) {
        aes.encryptBlock(block, block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_AesBlock);

void
BM_GcmEncrypt4K(benchmark::State &state)
{
    Rng rng(2);
    std::uint8_t key[16];
    rng.fill(key, 16);
    GcmContext ctx(key, Aes::KeySize::k128);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::vector<std::uint8_t> cipher(plain.size());
    GcmIv iv{};
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctx.encrypt(
            iv, plain.data(), plain.size(), cipher.data()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_GcmEncrypt4K);

void
BM_IncrementalGcm4K(benchmark::State &state)
{
    Rng rng(3);
    std::uint8_t key[16];
    rng.fill(key, 16);
    GcmContext ctx(key, Aes::KeySize::k128);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::vector<std::uint8_t> cipher(plain.size());
    GcmIv iv{};
    for (auto _ : state) {
        IncrementalGcm inc(ctx, iv, plain.size());
        for (std::size_t line = 0; line < inc.lineCount(); ++line)
            inc.processLine(line, plain.data() + line * 64,
                            cipher.data() + line * 64);
        benchmark::DoNotOptimize(inc.finalTag());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_IncrementalGcm4K);

void
BM_TlsRecordProtect(benchmark::State &state)
{
    Rng rng(4);
    std::uint8_t key[16];
    rng.fill(key, 16);
    GcmIv iv{};
    TlsSession session(key, iv);
    std::vector<std::uint8_t> msg(4096);
    rng.fill(msg.data(), msg.size());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            session.protect(msg.data(), msg.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_TlsRecordProtect);

void
BM_DeviceCompCpy4K(benchmark::State &state)
{
    bench::DeviceRig rig;
    Rng rng(5);
    std::vector<std::uint8_t> data(4096);
    rng.fill(data.data(), data.size());
    std::uint64_t i = 0;
    for (auto _ : state) {
        const Addr sbuf =
            (1ULL << 20) + (i % 1024) * 8 * kPageSize;
        const Addr dbuf = sbuf + 4 * kPageSize;
        rig.memory->writeSync(sbuf, data.data(), data.size());
        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = 4096;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = ++i;
        rng.fill(params.key, sizeof(params.key));
        rig.engine.run(params);
        rig.engine.useSync(dbuf, 4096 + kPageSize);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_DeviceCompCpy4K);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    // Machine-readable artefact for the active kernel tier, next to
    // the google-benchmark table (satellite of the kernel layer).
    Rng rng(6);
    std::uint8_t key[16];
    rng.fill(key, 16);
    Aes aes(key, Aes::KeySize::k128);
    GcmContext ctx(key, Aes::KeySize::k128);
    std::vector<std::uint8_t> plain(4096);
    rng.fill(plain.data(), plain.size());
    std::vector<std::uint8_t> cipher(plain.size());
    GcmIv iv{};

    std::vector<bench::KernelBenchRow> rows;
    std::uint8_t block[16] = {};
    rows.push_back(bench::timeKernelOp(
        "aes_block", 16, 16, [&] { aes.encryptBlock(block, block); }));
    rows.push_back(bench::timeKernelOp("gcm_encrypt_4k", 4096, 16, [&] {
        benchmark::DoNotOptimize(
            ctx.encrypt(iv, plain.data(), plain.size(), cipher.data()));
    }));
    rows.push_back(
        bench::timeKernelOp("incremental_gcm_4k", 4096, 16, [&] {
            IncrementalGcm inc(ctx, iv, plain.size());
            for (std::size_t line = 0; line < inc.lineCount(); ++line)
                inc.processLine(line, plain.data() + line * 64,
                                cipher.data() + line * 64);
            benchmark::DoNotOptimize(inc.finalTag());
        }));
    bench::writeKernelBenchJson("BENCH_crypto.json", rows);
    return 0;
}
