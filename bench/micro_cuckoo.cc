/**
 * @file
 * Sec. IV-C microbenchmark: the 3-ary cuckoo Translation Table at the
 * paper's sizing (12288 buckets for 4096 live entries = 33% load)
 * inserts on the first attempt or with a single displacement, with an
 * effectively zero failure probability. Also uses google-benchmark to
 * measure lookup/insert throughput of the software model.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/random.h"
#include "smartdimm/cuckoo_table.h"

using namespace sd;
using smartdimm::CuckooTable;
using smartdimm::Translation;

namespace {

/** Occupancy sweep table (printed once before the throughput runs). */
void
printOccupancySweep()
{
    std::printf("=============================================================="
                "\nCuckoo Translation Table (Sec. IV-C) — occupancy sweep\n"
                "=============================================================="
                "\n");
    std::printf("%-10s %12s %14s %14s %10s\n", "load_%", "inserts",
                "first_try_%", "disp_per_ins", "failures");
    for (int load_pct : {10, 20, 33, 40, 50}) {
        CuckooTable table(12288, 8);
        Rng rng(100 + load_pct);
        const int inserts = 12288 * load_pct / 100;
        for (int i = 0; i < inserts; ++i)
            table.insert(rng.next() >> 13,
                         Translation{
                             smartdimm::MappingKind::kScratchpad,
                             static_cast<std::uint32_t>(i), 0});
        const auto &stats = table.stats();
        std::printf("%-10d %12llu %14.2f %14.4f %10llu\n", load_pct,
                    static_cast<unsigned long long>(stats.inserts),
                    100.0 * static_cast<double>(stats.first_try_inserts) /
                        static_cast<double>(stats.inserts),
                    static_cast<double>(stats.displacements) /
                        static_cast<double>(stats.inserts),
                    static_cast<unsigned long long>(stats.failures));
    }
    std::printf("\nPaper anchor: below 33%% occupancy inserts land on\n"
                "the first attempt or with a single displacement;\n"
                "failure probability is effectively zero.\n\n");
}

void
BM_CuckooLookupHit(benchmark::State &state)
{
    CuckooTable table(12288, 8);
    Rng rng(1);
    std::vector<std::uint64_t> keys;
    for (int i = 0; i < 4096; ++i) {
        keys.push_back(rng.next() >> 13);
        table.insert(keys.back(),
                     Translation{smartdimm::MappingKind::kScratchpad,
                                 static_cast<std::uint32_t>(i), 0});
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(keys[i++ % keys.size()]));
    }
}
BENCHMARK(BM_CuckooLookupHit);

void
BM_CuckooLookupMiss(benchmark::State &state)
{
    CuckooTable table(12288, 8);
    Rng rng(2);
    for (int i = 0; i < 4096; ++i)
        table.insert(rng.next() >> 13,
                     Translation{smartdimm::MappingKind::kScratchpad,
                                 static_cast<std::uint32_t>(i), 0});
    std::uint64_t key = 1;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(key));
        key += 7777;
    }
}
BENCHMARK(BM_CuckooLookupMiss);

void
BM_CuckooInsertErase(benchmark::State &state)
{
    CuckooTable table(12288, 8);
    Rng rng(3);
    for (int i = 0; i < 4000; ++i)
        table.insert(rng.next() >> 13,
                     Translation{smartdimm::MappingKind::kScratchpad,
                                 static_cast<std::uint32_t>(i), 0});
    std::uint64_t key = 1ull << 40;
    for (auto _ : state) {
        table.insert(key, Translation{});
        table.erase(key);
        ++key;
    }
}
BENCHMARK(BM_CuckooInsertErase);

} // namespace

int
main(int argc, char **argv)
{
    printOccupancySweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
