/**
 * @file
 * Fig. 11: Nginx serving TLS over 1024 connections with 10 worker
 * threads — requests/second, CPU utilisation and memory-bandwidth
 * utilisation for the CPU / SmartNIC / QuickAssist / SmartDIMM
 * placements at 4 KB and 16 KB (plus the 64 KB point quoted in the
 * text), normalised to the CPU configuration.
 */

#include <cstdio>

#include "app/server_model.h"
#include "bench/bench_util.h"

using namespace sd;

namespace {

void
sweep(std::size_t msg, sd::trace::StatsRegistry &registry)
{
    std::printf("\nmessage size %zu KB:\n", msg / 1024);
    std::printf("  %-12s %10s %8s %9s %8s %12s %10s\n", "placement",
                "RPS", "RPS/CPU", "CPUutil", "BW_GBps",
                "BWperReq/CPU", "latency_us");

    app::ServerResult cpu;
    for (auto kind :
         {offload::PlacementKind::kCpu, offload::PlacementKind::kSmartNic,
          offload::PlacementKind::kQuickAssist,
          offload::PlacementKind::kSmartDimm}) {
        app::ServerConfig cfg;
        cfg.ulp = offload::Ulp::kTlsEncrypt;
        cfg.message_bytes = msg;
        cfg.placement = kind;
        const auto r = app::evaluateServer(cfg);
        if (kind == offload::PlacementKind::kCpu)
            cpu = r;
        std::printf("  %-12s %10.0f %8.3f %9.2f %8.1f %12.2f %10.1f\n",
                    r.placement_name.c_str(), r.rps, r.rps / cpu.rps,
                    r.cpu_utilization, r.mem_bandwidth_gbps,
                    r.dram_bytes_per_request /
                        cpu.dram_bytes_per_request,
                    r.latency_us);
        registry.add("msg" + std::to_string(msg) + "." +
                         r.placement_name,
                     [r](sd::trace::StatsBlock &block) {
                         block.scalar("rps", r.rps);
                         block.scalar("cpu_utilization",
                                      r.cpu_utilization);
                         block.scalar("mem_bandwidth_gbps",
                                      r.mem_bandwidth_gbps);
                         block.scalar("dram_bytes_per_request",
                                      r.dram_bytes_per_request);
                         block.scalar("latency_us", r.latency_us);
                     });
    }
}

} // namespace

int
main()
{
    bench::header("Figure 11",
                  "Nginx TLS RPS / CPU / memory-BW by placement "
                  "(normalised to CPU)");
    sd::trace::StatsRegistry registry;
    sweep(4096, registry);
    sweep(16384, registry);
    sweep(65536, registry);
    bench::writeStatsJson("fig11", registry);
    std::printf(
        "\nPaper anchors: SmartDIMM +21.0%% RPS at 4 KB and +35.8%% at\n"
        "16 KB over CPU with ~49%% lower per-request memory traffic;\n"
        "SmartNIC and QuickAssist provide no RPS gain at 4 KB;\n"
        "at 64 KB SmartDIMM holds ~11.9%% higher RPS than SmartNIC.\n");
    return 0;
}
