/**
 * @file
 * Topology scale-out microbenchmark: aggregate CompCpy throughput as
 * the platform grows from one SmartDIMM to multiple channels x
 * multiple DIMMs per channel.
 *
 * A fixed batch of TLS-4K records is driven closed-loop through the
 * ShardDispatcher: requests round-robin over a pool of persistent
 * flows, each flow hash-affinitizes to its home DIMM, and every
 * reaped completion submits the next record, holding a small window
 * in flight per slot. Because each slot is an independent device
 * behind its own (share of a) channel, the same total work finishes
 * roughly slots-times faster — the whole point of scaling the
 * topology out.
 *
 * Reports aggregate offloads/sec and p50/p99 submit->completion
 * latency for 1x1, 2x1, 2x2 and 4x2, and writes BENCH_topology.json.
 *
 * Paper anchor: SmartDIMM's throughput scales with the number of
 * devices because each DIMM owns its own DSA pipeline and channel
 * share (Sec. VI) — 4x2 must sustain >= 3x the 1x1 aggregate
 * offloads/sec on this workload.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "topo/dispatcher.h"

using namespace sd;
using compcpy::CompletionRecord;
using compcpy::Descriptor;

namespace {

constexpr std::size_t kOffloads = 256;
constexpr std::size_t kRecordBytes = 4096; // TLS-4K

struct Row
{
    char name[8] = "";
    unsigned channels = 1;
    unsigned dimms = 1;
    double ops_per_sec = 0;
    double p50_us = 0;
    double p99_us = 0;
    double speedup = 1.0;
    std::uint64_t shed_to_sibling = 0;
    std::uint64_t shed_to_cpu = 0;
};

Tick
percentile(const std::vector<Tick> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

Row
runShape(unsigned channels, unsigned dimms)
{
    topo::TopologySpec spec;
    spec.channels = channels;
    spec.dimms_per_channel = dimms;
    topo::Topology topo(spec);
    topo::ShardDispatcher dispatcher(topo);
    EventQueue &events = topo.events();

    const unsigned slots = topo.slotCount();
    const std::size_t flows = 8 * slots;
    const std::size_t window = 4 * slots; // in flight, ~4 per slot

    Rng rng(29);
    std::vector<std::uint8_t> payload(kRecordBytes);
    rng.fill(payload.data(), payload.size());
    std::uint8_t key[16];
    rng.fill(key, sizeof(key));

    std::size_t next = 0;
    std::size_t done = 0;
    std::vector<Tick> latencies;
    latencies.reserve(kOffloads);

    std::function<void()> submitNext = [&] {
        if (next >= kOffloads)
            return;
        const std::size_t i = next++;
        const std::uint64_t flow = i % flows;

        unsigned slot = dispatcher.place(flow);
        const bool forced = slot == topo::ShardDispatcher::kCpuPath;
        if (forced) // bench measures the devices: never drop to CPU
            slot = dispatcher.homeSlot(flow);
        topo::Topology::Slot &dev = topo.slot(slot);

        compcpy::CompCpyParams params;
        params.size = kRecordBytes;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 1 + i;
        std::memcpy(params.key, key, sizeof(key));
        params.iv[4] = static_cast<std::uint8_t>(i >> 8);
        params.iv[5] = static_cast<std::uint8_t>(i);
        params.sbuf = dev.driver.alloc(kRecordBytes);
        const std::size_t dbytes =
            compcpy::CompCpyEngine::destPages(params) * kPageSize;
        params.dbuf = dev.driver.alloc(dbytes);
        topo.store().write(params.sbuf, payload.data(),
                           payload.size());

        auto reap = [&, params, dbytes, slot](
                        const CompletionRecord &record) {
            latencies.push_back(record.completed - record.submitted);
            ++done;
            topo.slot(slot).driver.release(params.sbuf, params.size);
            topo.slot(slot).driver.release(params.dbuf, dbytes);
            submitNext();
        };
        if (!dispatcher.submit(slot, Descriptor::single(params), 0,
                               reap))
            dispatcher.queue(slot).submitForce(
                Descriptor::single(params), 0, reap);
    };

    for (std::size_t i = 0; i < window && next < kOffloads; ++i)
        submitNext();
    events.run();
    const Tick elapsed = events.now();

    Row row;
    std::snprintf(row.name, sizeof(row.name), "%ux%u", channels,
                  dimms);
    row.channels = channels;
    row.dimms = dimms;
    row.ops_per_sec = done == kOffloads
                          ? static_cast<double>(kOffloads) * 1e12 /
                                static_cast<double>(elapsed)
                          : 0;
    std::sort(latencies.begin(), latencies.end());
    row.p50_us = static_cast<double>(percentile(latencies, 0.50)) / 1e6;
    row.p99_us = static_cast<double>(percentile(latencies, 0.99)) / 1e6;
    row.shed_to_sibling = dispatcher.stats().shed_to_sibling;
    row.shed_to_cpu = dispatcher.stats().shed_to_cpu;
    return row;
}

void
writeJson(const std::vector<Row> &rows)
{
    std::ofstream os("BENCH_topology.json");
    if (!os) {
        std::printf("could not write BENCH_topology.json\n");
        return;
    }
    os << "{\n  \"offloads\": " << kOffloads
       << ",\n  \"record_bytes\": " << kRecordBytes
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"name\": \"" << r.name << "\", "
           << "\"channels\": " << r.channels << ", "
           << "\"dimms_per_channel\": " << r.dimms << ", "
           << "\"ops_per_sec\": " << r.ops_per_sec << ", "
           << "\"p50_us\": " << r.p50_us << ", "
           << "\"p99_us\": " << r.p99_us << ", "
           << "\"speedup_vs_1x1\": " << r.speedup << ", "
           << "\"shed_to_sibling\": " << r.shed_to_sibling << ", "
           << "\"shed_to_cpu\": " << r.shed_to_cpu << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote BENCH_topology.json\n");
}

} // namespace

int
main()
{
    bench::header("Topology scale-out microbenchmark (Sec. VI)",
                  "aggregate TLS-4K CompCpy throughput, 1x1 -> 4x2");

    std::vector<Row> rows;
    std::printf("%-6s %6s %14s %10s %10s %9s %6s\n", "shape", "slots",
                "offloads/s", "p50(us)", "p99(us)", "speedup", "shed");
    for (const auto &[channels, dimms] :
         {std::pair<unsigned, unsigned>{1, 1}, {2, 1}, {2, 2}, {4, 2}}) {
        Row row = runShape(channels, dimms);
        if (!rows.empty())
            row.speedup = row.ops_per_sec / rows[0].ops_per_sec;
        std::printf("%-6s %6u %14.0f %10.2f %10.2f %9.2f %6llu\n",
                    row.name, row.channels * row.dimms,
                    row.ops_per_sec, row.p50_us, row.p99_us,
                    row.speedup,
                    static_cast<unsigned long long>(
                        row.shed_to_sibling + row.shed_to_cpu));
        rows.push_back(row);
    }
    writeJson(rows);

    std::printf("\nPaper anchor: every DIMM owns an independent DSA\n"
                "pipeline behind its own channel share, so aggregate\n"
                "throughput scales with device count — 4x2 must\n"
                "sustain >= 3x the 1x1 offloads/sec.\n");
    return 0;
}
