/**
 * @file
 * Work-queue microbenchmark: offload throughput of the async
 * descriptor front end vs serial synchronous CompCpy calls.
 *
 * Workload shape matters here. Large records saturate the single DDR
 * channel with copy traffic, so queue depth adds latency without
 * adding throughput — the engine already pipelines lines within one
 * op. The front end's win is amortising the *fixed* per-offload
 * protocol cost (doorbell MMIO, page registration, completion ack,
 * and the dependent round trips between them), which dominates for
 * small messages. So the bench offloads single-line deflate records
 * (no TLS trailer zero-fill inflating the bus floor) from pre-staged,
 * pre-flushed sources, three ways:
 *
 *  - serial_sync: one run() at a time — every round trip exposed.
 *  - async: closed loop of single-op descriptors at depths 1..32 —
 *    each reaped completion immediately submits the next, holding the
 *    ring at its target depth.
 *  - async_batch8: closed loop of batch descriptors packing 8
 *    messages each — one doorbell and one completion ack per 8 ops.
 *
 * Reports offloads/sec (from simulated ticks) and p50/p99
 * submit→record latency per row, and writes BENCH_queue.json.
 *
 * Paper anchor: DSA-style batching (Sec. IV-B) — one core keeps many
 * small offloads in flight, and batch descriptors amortise the MMIO
 * protocol, so the async front end must sustain >= 2x serial
 * throughput by depth 8.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "compcpy/queue.h"

using namespace sd;
using compcpy::CompletionRecord;
using compcpy::Descriptor;
using compcpy::QueueMode;
using compcpy::WorkQueue;
using compcpy::WorkQueueConfig;

namespace {

constexpr std::size_t kOffloads = 256;
constexpr std::size_t kRecordBytes = 64; // one line: protocol-bound
constexpr std::size_t kBatch = 8;        // messages per batch descriptor

/**
 * Pre-staged workload: every source buffer written *and flushed*
 * before timing, so the timed region measures the offload protocol,
 * not staging writebacks (flushSource then finds clean lines and
 * completes locally in both modes).
 */
struct Workload
{
    std::vector<compcpy::CompCpyParams> ops;
};

Workload
stage(bench::DeviceRig &rig)
{
    Workload w;
    Rng rng(71);
    std::vector<std::uint8_t> plain(kRecordBytes);

    for (std::size_t i = 0; i < kOffloads; ++i) {
        rng.fill(plain.data(), plain.size());
        const Addr sbuf = rig.driver.alloc(kRecordBytes);
        const Addr dbuf = rig.driver.alloc(kPageSize);
        rig.memory->writeSync(sbuf, plain.data(), plain.size());
        rig.memory->flushSync(sbuf, plain.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = kRecordBytes;
        params.ulp = smartdimm::UlpKind::kDeflate;
        params.message_id = i + 1;
        w.ops.push_back(params);
    }
    return w;
}

struct Row
{
    const char *mode = "async";
    std::size_t depth = 0; ///< 0 = serial synchronous baseline
    std::size_t batch = 1; ///< ops per descriptor
    double offloads_per_sec = 0;
    double p50_us = 0;
    double p99_us = 0;
    double speedup = 1.0;
};

double
offloadsPerSec(Tick elapsed)
{
    // Ticks are picoseconds.
    return static_cast<double>(kOffloads) * 1e12 /
           static_cast<double>(elapsed);
}

/** Serial baseline: one synchronous run() at a time. */
Row
runSerial()
{
    bench::DeviceRig rig;
    const Workload w = stage(rig);
    const Tick start = rig.events.now();
    for (const auto &op : w.ops)
        rig.engine.run(op);
    const Tick elapsed = rig.events.now() - start;

    Row row;
    row.mode = "serial_sync";
    row.depth = 0;
    row.offloads_per_sec = offloadsPerSec(elapsed);
    const auto &lat = rig.engine.syncQueue().completionLatency();
    row.p50_us = static_cast<double>(lat.percentile(0.50)) / 1e6;
    row.p99_us = static_cast<double>(lat.percentile(0.99)) / 1e6;
    return row;
}

/**
 * Closed-loop async: reaping a record submits the next descriptor,
 * packing `batch` messages per descriptor (1 = single-op).
 */
Row
runAsync(std::size_t depth, std::size_t batch)
{
    bench::DeviceRig rig;
    const Workload w = stage(rig);

    WorkQueueConfig cfg;
    cfg.id = 1;
    cfg.mode = QueueMode::kDedicated;
    cfg.depth = depth;
    cfg.max_inflight = depth * batch;
    WorkQueue queue(rig.engine, cfg);

    const std::size_t descriptors = kOffloads / batch;
    std::size_t next = 0;
    std::size_t done = 0;
    std::function<void(const CompletionRecord &)> on_complete;
    auto submitNext = [&] {
        if (next >= descriptors)
            return;
        std::vector<compcpy::CompCpyParams> ops(
            w.ops.begin() + static_cast<std::ptrdiff_t>(next * batch),
            w.ops.begin() +
                static_cast<std::ptrdiff_t>((next + 1) * batch));
        queue.submitForce(Descriptor::batch(std::move(ops)), 0,
                          on_complete);
        ++next;
    };
    on_complete = [&](const CompletionRecord &) {
        ++done;
        submitNext();
    };

    const Tick start = rig.events.now();
    for (std::size_t i = 0; i < depth && next < descriptors; ++i)
        submitNext();
    rig.events.run();
    const Tick elapsed = rig.events.now() - start;

    Row row;
    row.mode = batch > 1 ? "async_batch8" : "async";
    row.depth = depth;
    row.batch = batch;
    row.offloads_per_sec =
        done == descriptors ? offloadsPerSec(elapsed) : 0;
    const auto &lat = queue.completionLatency();
    row.p50_us = static_cast<double>(lat.percentile(0.50)) / 1e6;
    row.p99_us = static_cast<double>(lat.percentile(0.99)) / 1e6;
    return row;
}

void
writeJson(const std::vector<Row> &rows)
{
    std::ofstream os("BENCH_queue.json");
    if (!os) {
        std::printf("could not write BENCH_queue.json\n");
        return;
    }
    os << "{\n  \"offloads\": " << kOffloads
       << ",\n  \"record_bytes\": " << kRecordBytes
       << ",\n  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"mode\": \"" << r.mode << "\", "
           << "\"depth\": " << r.depth << ", "
           << "\"batch\": " << r.batch << ", "
           << "\"offloads_per_sec\": " << r.offloads_per_sec << ", "
           << "\"p50_us\": " << r.p50_us << ", "
           << "\"p99_us\": " << r.p99_us << ", "
           << "\"speedup_vs_serial\": " << r.speedup << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote BENCH_queue.json\n");
}

} // namespace

int
main()
{
    bench::header("Work-queue microbenchmark (Sec. IV-B)",
                  "async descriptor throughput vs serial CompCpy calls");

    std::vector<Row> rows;
    rows.push_back(runSerial());
    const double serial = rows[0].offloads_per_sec;

    std::printf("%-12s %8s %6s %14s %10s %10s %9s\n", "mode", "depth",
                "batch", "offloads/s", "p50(us)", "p99(us)", "speedup");
    std::printf("%-12s %8s %6zu %14.0f %10.2f %10.2f %9.2f\n",
                rows[0].mode, "-", rows[0].batch, serial, rows[0].p50_us,
                rows[0].p99_us, 1.0);

    auto report = [&](Row row) {
        row.speedup = row.offloads_per_sec / serial;
        std::printf("%-12s %8zu %6zu %14.0f %10.2f %10.2f %9.2f\n",
                    row.mode, row.depth, row.batch, row.offloads_per_sec,
                    row.p50_us, row.p99_us, row.speedup);
        rows.push_back(row);
    };
    for (const std::size_t depth : {1u, 2u, 4u, 8u, 16u, 32u})
        report(runAsync(depth, 1));
    for (const std::size_t depth : {8u, 16u})
        report(runAsync(depth, kBatch));
    writeJson(rows);

    std::printf("\nPaper anchor: single-op descriptors overlap the\n"
                "protocol round trips; batch descriptors amortise the\n"
                "doorbell and completion ack across %zu messages — the\n"
                "async front end at depth 8 must sustain >= 2x serial\n"
                "synchronous throughput.\n",
                kBatch);
    return 0;
}
