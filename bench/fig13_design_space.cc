/**
 * @file
 * Fig. 13: the ULP processing design-space comparison — each
 * placement scored 0..5 against the paper's criteria (contention
 * behaviour, transport compatibility, ULP diversity, loss resilience,
 * transport-layer flexibility). Quantitative criteria are computed
 * from the placement models; structural ones follow from the
 * architecture.
 */

#include <cstdio>

#include "bench/bench_util.h"
#include "offload/design_space.h"

using namespace sd;

int
main()
{
    bench::header("Figure 13", "ULP processing design-space comparison");

    const auto points = offload::designSpace();
    const auto &names = offload::criterionNames();

    std::printf("%-24s", "option");
    for (const auto &name : names)
        std::printf(" %21s", name.c_str());
    std::printf("\n");

    sd::trace::StatsRegistry registry;
    for (const auto &point : points) {
        std::printf("%-24s", point.option.c_str());
        for (double score : point.scores)
            std::printf(" %21.1f", score);
        std::printf("\n");
        registry.add(point.option,
                     [point, &names](sd::trace::StatsBlock &block) {
                         for (std::size_t i = 0;
                              i < point.scores.size() &&
                              i < names.size();
                              ++i)
                             block.scalar(names[i], point.scores[i]);
                     });
    }
    bench::writeStatsJson("fig13", registry);

    std::printf(
        "\nPaper shape: CPU is universally flexible but collapses\n"
        "under LLC contention; SmartNIC autonomous offload is fast\n"
        "but loses under drops and handles only size-preserving ULPs;\n"
        "PCIe cards keep flexibility but pay fine-grain offload taxes;\n"
        "SmartDIMM keeps high scores across the board.\n");
    return 0;
}
