/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: row
 * printing and the standard system rig (memory system + SmartDIMM
 * buffer device + CompCpy engine) used by the device-level benches.
 */

#ifndef SD_BENCH_BENCH_UTIL_H
#define SD_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"

namespace sd::bench {

/** Print a bench header with the paper artefact it regenerates. */
inline void
header(const char *artifact, const char *description)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", artifact, description);
    std::printf("==============================================================\n");
}

/** One-channel SmartDIMM system rig for device-level experiments. */
struct DeviceRig
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    explicit DeviceRig(std::size_t llc_bytes = 32ull << 20,
                       unsigned llc_ways = 16)
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/2048ULL << 20),
          engine(makeMemory(llc_bytes, llc_ways), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory(std::size_t llc_bytes, unsigned llc_ways)
    {
        cache::CacheConfig cc;
        cc.size_bytes = llc_bytes;
        cc.ways = llc_ways;
        cc.cpu_ways = llc_ways;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }
};

} // namespace sd::bench

#endif // SD_BENCH_BENCH_UTIL_H
