/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: row
 * printing and the standard system rig (memory system + SmartDIMM
 * buffer device + CompCpy engine) used by the device-level benches.
 */

#ifndef SD_BENCH_BENCH_UTIL_H
#define SD_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "trace/trace.h"

namespace sd::bench {

/** Print a bench header with the paper artefact it regenerates. */
inline void
header(const char *artifact, const char *description)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", artifact, description);
    std::printf("==============================================================\n");
}

/** One-channel SmartDIMM system rig for device-level experiments. */
struct DeviceRig
{
    EventQueue events;
    mem::BackingStore store;
    mem::DramGeometry geometry;
    mem::AddressMap map;
    smartdimm::BufferDevice dimm;
    std::unique_ptr<cache::MemorySystem> memory;
    compcpy::Driver driver;
    compcpy::CompCpyEngine::SharedState shared;
    compcpy::CompCpyEngine engine;

    explicit DeviceRig(std::size_t llc_bytes = 32ull << 20,
                       unsigned llc_ways = 16)
        : geometry(makeGeometry()),
          map(geometry, mem::ChannelInterleave::kNone),
          dimm(events, map, store),
          driver(/*base=*/1ULL << 20, /*bytes=*/2048ULL << 20),
          engine(makeMemory(llc_bytes, llc_ways), driver, shared)
    {
    }

    static mem::DramGeometry
    makeGeometry()
    {
        mem::DramGeometry g;
        g.channels = 1;
        return g;
    }

    cache::MemorySystem &
    makeMemory(std::size_t llc_bytes, unsigned llc_ways)
    {
        cache::CacheConfig cc;
        cc.size_bytes = llc_bytes;
        cc.ways = llc_ways;
        cc.cpu_ways = llc_ways;
        memory = std::make_unique<cache::MemorySystem>(
            events, geometry, mem::ChannelInterleave::kNone, cc,
            std::vector<mem::DimmDevice *>{&dimm});
        return *memory;
    }

    /**
     * Register every rig component into @p registry: the memory
     * system ("llc", "mc.chN"), the CompCpy engine ("compcpy") and
     * the buffer device ("dimm"). The registry must not outlive the
     * rig.
     */
    void
    registerStats(trace::StatsRegistry &registry) const
    {
        memory->registerStats(registry);
        registry.add("compcpy", [this](trace::StatsBlock &block) {
            engine.reportStats(block);
        });
        registry.add("dimm", [this](trace::StatsBlock &block) {
            dimm.reportStats(block);
        });
    }
};

/**
 * Dump @p registry as `<name>_stats.json` next to the bench's normal
 * output. Prints a one-line confirmation so runs show the artefact.
 */
inline void
writeStatsJson(const std::string &name,
               const trace::StatsRegistry &registry)
{
    const std::string path = name + "_stats.json";
    std::ofstream os(path);
    if (!os) {
        std::printf("could not write %s\n", path.c_str());
        return;
    }
    registry.dumpJson(os);
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Dump the global tracer's span report (plus @p registry when given)
 * as `<name>_spans.json`. No-op when the tracer never recorded.
 */
inline void
writeSpansJson(const std::string &name,
               const trace::StatsRegistry *registry = nullptr)
{
    const auto &tr = trace::tracer();
    if (tr.spans().empty())
        return;
    const std::string path = name + "_spans.json";
    if (tr.writeJsonFile(path, registry))
        std::printf("wrote %s (%zu spans, %zu events)\n", path.c_str(),
                    tr.spans().size(), tr.events().size());
}

} // namespace sd::bench

#endif // SD_BENCH_BENCH_UTIL_H
