/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses: row
 * printing and the standard system rig (memory system + SmartDIMM
 * buffer device + CompCpy engine) used by the device-level benches.
 */

#ifndef SD_BENCH_BENCH_UTIL_H
#define SD_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cache/memory_system.h"
#include "compcpy/compcpy.h"
#include "compcpy/driver.h"
#include "kernels/dispatch.h"
#include "sim/event_queue.h"
#include "smartdimm/buffer_device.h"
#include "topo/topology.h"
#include "trace/trace.h"

namespace sd::bench {

/** Print a bench header with the paper artefact it regenerates. */
inline void
header(const char *artifact, const char *description)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", artifact, description);
    std::printf("==============================================================\n");
}

/**
 * One-channel SmartDIMM system rig for device-level experiments.
 * Built through the topology factory (a 1x1 Topology keeps the legacy
 * single-device layout bit-for-bit); the flat member references
 * preserve the historical rig field names the benches were written
 * against.
 */
struct DeviceRig
{
    topo::Topology topo;
    EventQueue &events;
    mem::BackingStore &store;
    const mem::DramGeometry &geometry;
    const mem::AddressMap &map;
    smartdimm::BufferDevice &dimm;
    cache::MemorySystem *memory;
    compcpy::Driver &driver;
    compcpy::CompCpyEngine::SharedState &shared;
    compcpy::CompCpyEngine &engine;

    explicit DeviceRig(std::size_t llc_bytes = 32ull << 20,
                       unsigned llc_ways = 16)
        : topo(makeSpec(llc_bytes, llc_ways)), events(topo.events()),
          store(topo.store()), geometry(topo.geometry()),
          map(topo.addressMap()), dimm(topo.slot(0u).device),
          memory(&topo.memory()), driver(topo.slot(0u).driver),
          shared(topo.slot(0u).shared), engine(topo.slot(0u).engine)
    {
    }

    static topo::TopologySpec
    makeSpec(std::size_t llc_bytes, unsigned llc_ways)
    {
        topo::TopologySpec spec;
        spec.llc.size_bytes = llc_bytes;
        spec.llc.ways = llc_ways;
        spec.llc.cpu_ways = llc_ways;
        return spec;
    }

    /**
     * Register every rig component into @p registry: the memory
     * system ("llc", "mc.chN"), the CompCpy engine ("compcpy") and
     * the buffer device ("smartdimm"). The registry must not outlive
     * the rig.
     */
    void
    registerStats(trace::StatsRegistry &registry) const
    {
        topo.registerStats(registry);
    }
};

/**
 * Dump @p registry as `<name>_stats.json` next to the bench's normal
 * output. Prints a one-line confirmation so runs show the artefact.
 */
inline void
writeStatsJson(const std::string &name,
               const trace::StatsRegistry &registry)
{
    const std::string path = name + "_stats.json";
    std::ofstream os(path);
    if (!os) {
        std::printf("could not write %s\n", path.c_str());
        return;
    }
    registry.dumpJson(os);
    std::printf("wrote %s\n", path.c_str());
}

/**
 * Dump the global tracer's span report (plus @p registry when given)
 * as `<name>_spans.json`. No-op when the tracer never recorded.
 */
inline void
writeSpansJson(const std::string &name,
               const trace::StatsRegistry *registry = nullptr)
{
    const auto &tr = trace::tracer();
    if (tr.spans().empty())
        return;
    const std::string path = name + "_spans.json";
    if (tr.writeJsonFile(path, registry))
        std::printf("wrote %s (%zu spans, %zu events)\n", path.c_str(),
                    tr.spans().size(), tr.events().size());
}

/** One self-timed kernel measurement for the BENCH_*.json artefacts. */
struct KernelBenchRow
{
    std::string name;     ///< operation, e.g. "gcm_encrypt_4k"
    std::size_t op_bytes; ///< payload bytes per op
    double ns_per_op = 0; ///< wall-clock ns per op
    double ns_per_block = 0; ///< ns per 16 B AES block (or per op unit)
    double bytes_per_sec = 0;
};

/**
 * Time @p op (a void() callable processing @p op_bytes per call) by
 * wall clock: warm up, then run until ~50 ms has elapsed. Returns a
 * filled row. Deliberately simple — these numbers feed the BENCH_*.json
 * artefacts for tier comparisons, not the paper's simulated results.
 */
template <typename Fn>
KernelBenchRow
timeKernelOp(const std::string &name, std::size_t op_bytes,
             std::size_t block_bytes, Fn &&op)
{
    using Clock = std::chrono::steady_clock;
    for (int i = 0; i < 3; ++i)
        op();
    std::size_t iters = 0;
    const auto start = Clock::now();
    auto now = start;
    do {
        op();
        ++iters;
        if ((iters & 0xf) == 0 || iters < 16)
            now = Clock::now();
    } while (now - start < std::chrono::milliseconds(50));
    const double total_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count();
    KernelBenchRow row;
    row.name = name;
    row.op_bytes = op_bytes;
    row.ns_per_op = total_ns / static_cast<double>(iters);
    const double blocks_per_op =
        static_cast<double>(op_bytes) / static_cast<double>(block_bytes);
    row.ns_per_block =
        blocks_per_op > 0 ? row.ns_per_op / blocks_per_op : row.ns_per_op;
    row.bytes_per_sec = static_cast<double>(op_bytes) * 1e9 / row.ns_per_op;
    return row;
}

/**
 * Write the kernel measurement rows as @p path (BENCH_crypto.json /
 * BENCH_deflate.json), tagged with the active kernel tier so CI can
 * archive one artefact per forced tier.
 */
inline void
writeKernelBenchJson(const std::string &path,
                     const std::vector<KernelBenchRow> &rows)
{
    std::ofstream os(path);
    if (!os) {
        std::printf("could not write %s\n", path.c_str());
        return;
    }
    os << "{\n  \"kernel\": \""
       << kernels::tierName(kernels::activeTier()) << "\",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        os << "    {\"name\": \"" << r.name << "\", \"op_bytes\": "
           << r.op_bytes << ", \"ns_per_op\": " << r.ns_per_op
           << ", \"ns_per_block\": " << r.ns_per_block
           << ", \"bytes_per_sec\": " << r.bytes_per_sec << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote %s (kernel tier '%s')\n", path.c_str(),
                kernels::tierName(kernels::activeTier()));
}

} // namespace sd::bench

#endif // SD_BENCH_BENCH_UTIL_H
