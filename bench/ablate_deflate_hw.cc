/**
 * @file
 * Ablation: hardware Deflate pipeline design choices (Sec. V-B) —
 * parallelisation-window width and the best-effort bank-conflict
 * policy vs compression ratio and pipeline throughput, against the
 * software encoder's ratio as the upper bound.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "compress/deflate.h"
#include "compress/hw_deflate.h"

using namespace sd;
using namespace sd::compress;

namespace {

std::vector<std::uint8_t>
webCorpus(std::size_t len, std::uint64_t seed)
{
    Rng rng(seed);
    static const char *snippets[] = {
        "<div class=\"row\"><span>SmartDIMM near-memory ULP</span></div>",
        "HTTP/1.1 200 OK\r\nContent-Type: text/html; charset=utf-8\r\n",
        "function handler(req, res) { res.end(render(req.url)); }",
        "Lorem ipsum dolor sit amet, consectetur adipiscing elit. ",
    };
    std::vector<std::uint8_t> out;
    while (out.size() < len) {
        const char *p = snippets[rng.below(4)];
        out.insert(out.end(), p, p + std::strlen(p));
        if (rng.chance(0.05))
            out.push_back(static_cast<std::uint8_t>(rng.next()));
    }
    out.resize(len);
    return out;
}

void
printDesignSweep()
{
    std::printf("=============================================================="
                "\nAblation: Deflate DSA window / bank policy (Sec. V-B)\n"
                "=============================================================="
                "\n");
    const auto corpus = webCorpus(64 * 1024, 11);

    const auto sw = deflateCompress(corpus.data(), corpus.size(),
                                    DeflateStrategy::kDynamic);
    std::printf("software zlib-class ratio: %.2fx (upper bound)\n\n",
                sw.ratio(corpus.size()));

    std::printf("%-8s %-14s %10s %12s %14s\n", "window", "bank_policy",
                "ratio", "steps", "conflicts");
    for (std::size_t window : {1ul, 2ul, 4ul, 8ul, 16ul}) {
        for (bool drop : {true, false}) {
            HwDeflateConfig cfg;
            cfg.parallel_window = window;
            cfg.drop_on_conflict = drop;
            HwDeflateStats stats;
            const auto bytes = hwDeflateCompress(
                corpus.data(), corpus.size(), cfg, &stats);
            std::printf("%-8zu %-14s %9.2fx %12llu %14llu\n", window,
                        drop ? "best-effort" : "ideal",
                        static_cast<double>(corpus.size()) /
                            static_cast<double>(bytes.size()),
                        static_cast<unsigned long long>(stats.steps),
                        static_cast<unsigned long long>(
                            stats.bank_conflicts));
        }
    }
    std::printf("\nPaper anchor: wider windows raise throughput with\n"
                "marginal ratio change; best-effort conflict dropping\n"
                "slightly reduces ratio but keeps latency\n"
                "deterministic.\n\n");
}

void
BM_HwDeflate4K(benchmark::State &state)
{
    const auto corpus = webCorpus(4096, 12);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            hwDeflateCompress(corpus.data(), corpus.size()));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_HwDeflate4K);

void
BM_SoftwareDeflate4K(benchmark::State &state)
{
    const auto corpus = webCorpus(4096, 13);
    for (auto _ : state) {
        benchmark::DoNotOptimize(deflateCompress(
            corpus.data(), corpus.size(), DeflateStrategy::kDynamic));
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_SoftwareDeflate4K);

} // namespace

int
main(int argc, char **argv)
{
    printDesignSweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
