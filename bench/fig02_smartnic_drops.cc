/**
 * @file
 * Fig. 2: achievable bandwidth over an encrypted connection for CPU
 * vs SmartNIC TLS offload under injected packet drops. The SmartNIC's
 * autonomous offload matches (or trails) the CPU at zero loss and
 * collapses as drops trigger driver resynchronisation + software
 * fallback crypto.
 */

#include <algorithm>
#include <cstdio>

#include "app/server_model.h"
#include "bench/bench_util.h"
#include "net/tcp_stream.h"

using namespace sd;

namespace {

/** Encrypted-stream goodput for one placement at a drop rate. */
double
goodputGbps(offload::PlacementKind placement, double drop_prob)
{
    // A long HTTPS transfer over one connection: the segment-level
    // TCP model gives the transport-layer goodput ceiling and the
    // loss-recovery episode count; the placement model turns recovery
    // episodes into CPU-side resync costs that throttle the sender.
    constexpr std::size_t kTransfer = 64ull << 20; // 64 MB stream
    net::TcpConfig tcp;
    net::LossConfig loss;
    loss.drop_prob = drop_prob;
    const auto xfer = net::tcpTransfer(kTransfer, tcp, loss, 42);

    // Messages of one TLS record (16 KB) stream over the connection.
    const std::size_t record = 16384;
    const double messages =
        static_cast<double>(kTransfer) / static_cast<double>(record);
    const double loss_events_per_message =
        static_cast<double>(xfer.resyncEvents()) / messages;

    offload::LoadContext ctx;
    ctx.leak_fraction = 0.2; // one streaming connection: mild thrash
    ctx.loss_events_per_message =
        placement == offload::PlacementKind::kSmartNic
            ? loss_events_per_message
            : 0.0; // CPU crypto is oblivious to losses
    offload::CostModel model;
    const auto p = offload::makePlacement(placement, model);
    const auto cost = p->messageCost(offload::Ulp::kTlsEncrypt, record,
                                     ctx);

    // Single-core sender: crypto/bookkeeping cycles cap the rate.
    const double cycles_per_record =
        cost.cpu_cycles + 4000; // socket + sendmsg path
    const double records_per_sec =
        model.cpu.freq_ghz * 1e9 / cycles_per_record;
    const double cpu_gbps = records_per_sec * record * 8.0 / 1e9;

    // Autonomous-offload resynchronisation additionally *pauses* the
    // inline engine: until the driver rebuilds the NIC's record state
    // the connection runs in software fallback (Pismenny et al.).
    double transport_gbps = xfer.goodput_gbps;
    if (placement == offload::PlacementKind::kSmartNic) {
        constexpr double kResyncStallSec = 250e-6;
        const double stalled =
            static_cast<double>(xfer.resyncEvents()) * kResyncStallSec;
        const double stall_frac =
            std::min(0.9, stalled / (xfer.seconds + stalled));
        transport_gbps *= 1.0 - stall_frac;
    }
    return std::min(transport_gbps, cpu_gbps);
}

} // namespace

int
main()
{
    bench::header("Figure 2",
                  "encrypted-connection bandwidth vs packet drop rate");
    std::printf("%-12s %14s %14s %10s\n", "drop_rate", "CPU_Gbps",
                "SmartNIC_Gbps", "NIC/CPU");
    const double drops[] = {0.0,    0.0001, 0.0005, 0.001,
                            0.0025, 0.005,  0.01};
    for (double drop : drops) {
        const double cpu = goodputGbps(offload::PlacementKind::kCpu, drop);
        const double nic =
            goodputGbps(offload::PlacementKind::kSmartNic, drop);
        std::printf("%-12g %14.2f %14.2f %10.2f\n", drop, cpu, nic,
                    nic / cpu);
    }
    std::printf("\nPaper shape: SmartNIC <= CPU at zero loss (AES-NI is\n"
                "fast); SmartNIC degrades steeply once drops appear.\n");
    return 0;
}
