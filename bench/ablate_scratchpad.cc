/**
 * @file
 * Ablation: Scratchpad sizing vs Force-Recycle frequency (Sec. IV-C
 * sizes the Scratchpad at 2048 pages so Force-Recycle calls are
 * effectively zero). Sweeps the scratchpad capacity under a stream
 * of offloads whose destinations recycle lazily.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "smartdimm/config.h"

using namespace sd;

namespace {

struct Outcome
{
    std::uint64_t force_recycles = 0;
    std::uint64_t self_recycles = 0;
    double peak_kb = 0;
};

Outcome
runWithCapacity(std::size_t scratch_pages)
{
    topo::TopologySpec spec;
    spec.device.scratchpad_bytes = scratch_pages * kPageSize;
    spec.llc.size_bytes = 2ull << 20; // contended LLC: evictions recycle
    topo::Topology topo(spec);

    EventQueue &events = topo.events();
    cache::MemorySystem &memory = topo.memory();
    smartdimm::BufferDevice &dimm = topo.slot(0u).device;
    compcpy::CompCpyEngine &engine = topo.slot(0u).engine;

    Rng rng(9);
    constexpr std::size_t kMsg = 4096;
    constexpr int kOffloads = 160;
    std::vector<std::uint8_t> data(kMsg);

    for (int i = 0; i < kOffloads; ++i) {
        const Addr sbuf =
            (1ULL << 20) + static_cast<Addr>(i) * 8 * kPageSize;
        const Addr dbuf = sbuf + 4 * kPageSize;
        rng.fill(data.data(), data.size());
        memory.writeSync(sbuf, data.data(), data.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = kMsg;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        params.message_id = 1 + static_cast<std::uint64_t>(i);
        rng.fill(params.key, sizeof(params.key));
        rng.fill(params.iv.data(), params.iv.size());
        engine.run(params);
        // Lazy consumption: rely on LLC evictions; no USE flush.
    }
    events.run();

    Outcome out;
    out.force_recycles = engine.stats().force_recycles;
    out.self_recycles = dimm.scratchpad().stats().self_recycles;
    out.peak_kb = static_cast<double>(
                      dimm.scratchpad().stats().peak_pages * kPageSize) /
                  1024.0;
    return out;
}

} // namespace

int
main()
{
    bench::header("Ablation: scratchpad sizing",
                  "Force-Recycle frequency vs scratchpad capacity");
    std::printf("%-16s %16s %16s %12s\n", "scratch_pages",
                "force_recycles", "self_recycles", "peak_KB");
    for (std::size_t pages : {16ul, 32ul, 64ul, 256ul, 1024ul, 2048ul}) {
        const auto out = runWithCapacity(pages);
        std::printf("%-16zu %16llu %16llu %12.1f\n", pages,
                    static_cast<unsigned long long>(out.force_recycles),
                    static_cast<unsigned long long>(out.self_recycles),
                    out.peak_kb);
    }
    std::printf("\nPaper anchor: at the 2048-page (8 MB) sizing the\n"
                "Force-Recycle path is effectively never taken.\n");
    return 0;
}
