/**
 * @file
 * Fig. 12: Nginx compressing HTTP responses — RPS / CPU / memory
 * bandwidth for CPU, QuickAssist and SmartDIMM placements at 4 KB and
 * 16 KB, normalised to CPU. SmartNIC is absent: autonomous NIC
 * offload cannot carry non-size-preserving ULPs (Obs. 1).
 */

#include <cstdio>

#include "app/server_model.h"
#include "bench/bench_util.h"

using namespace sd;

namespace {

void
sweep(std::size_t msg, sd::trace::StatsRegistry &registry)
{
    std::printf("\nmessage size %zu KB:\n", msg / 1024);
    std::printf("  %-12s %10s %8s %9s %8s %12s\n", "placement", "RPS",
                "RPS/CPU", "CPUutil", "BW_GBps", "BWperReq/CPU");

    app::ServerResult cpu;
    for (auto kind : {offload::PlacementKind::kCpu,
                      offload::PlacementKind::kSmartNic,
                      offload::PlacementKind::kQuickAssist,
                      offload::PlacementKind::kSmartDimm}) {
        app::ServerConfig cfg;
        cfg.ulp = offload::Ulp::kDeflate;
        cfg.message_bytes = msg;
        cfg.placement = kind;
        const auto r = app::evaluateServer(cfg);
        if (!r.supported) {
            std::printf("  %-12s %10s (non-size-preserving ULP cannot "
                        "offload autonomously)\n",
                        r.placement_name.c_str(), "—");
            continue;
        }
        if (kind == offload::PlacementKind::kCpu)
            cpu = r;
        std::printf("  %-12s %10.0f %8.3f %9.2f %8.1f %12.2f\n",
                    r.placement_name.c_str(), r.rps, r.rps / cpu.rps,
                    r.cpu_utilization, r.mem_bandwidth_gbps,
                    r.dram_bytes_per_request /
                        cpu.dram_bytes_per_request);
        registry.add("msg" + std::to_string(msg) + "." +
                         r.placement_name,
                     [r](sd::trace::StatsBlock &block) {
                         block.scalar("rps", r.rps);
                         block.scalar("cpu_utilization",
                                      r.cpu_utilization);
                         block.scalar("mem_bandwidth_gbps",
                                      r.mem_bandwidth_gbps);
                         block.scalar("dram_bytes_per_request",
                                      r.dram_bytes_per_request);
                     });
    }
}

} // namespace

int
main()
{
    bench::header("Figure 12",
                  "Nginx compression RPS / CPU / memory-BW by "
                  "placement (normalised to CPU)");
    sd::trace::StatsRegistry registry;
    sweep(4096, registry);
    sweep(16384, registry);
    bench::writeStatsJson("fig12", registry);
    std::printf(
        "\nPaper anchors: SmartDIMM 5.09x / 10.28x RPS over CPU at\n"
        "4/16 KB with ~81-89%% lower CPU and per-request memory\n"
        "traffic; QuickAssist provides no improvement for fine-grain\n"
        "compression offloads.\n");
    return 0;
}
