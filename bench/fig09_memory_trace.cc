/**
 * @file
 * Fig. 9: rdCAS/wrCAS traces collected from the SmartDIMM prototype
 * while four cores run concurrent CompCpy offloads. Reads belong to
 * the in-flight CompCpys' source buffers; writes are self-recycle
 * drains of earlier destination buffers. Addresses within one
 * CompCpy rise monotonically.
 *
 * Emits a textual summary plus a `fig09_trace.csv` with
 * (tick, type, address) rows for plotting.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "mem/dram_command.h"

using namespace sd;

namespace {

/** Capture CAS commands to registered buffer ranges. */
class Trace : public mem::CommandObserver
{
  public:
    struct Row
    {
        Tick tick;
        bool is_write;
        Addr addr;
    };

    void
    observe(const mem::DdrCommand &cmd) override
    {
        if (cmd.type == mem::DdrCommandType::kReadCas ||
            cmd.type == mem::DdrCommandType::kWriteCas)
            rows.push_back(Row{cmd.issue,
                               cmd.type ==
                                   mem::DdrCommandType::kWriteCas,
                               cmd.addr});
    }

    std::vector<Row> rows;
};

} // namespace

int
main()
{
    bench::header("Figure 9",
                  "rd/wrCAS memory trace of 4 cores running "
                  "concurrent CompCpys (32 MB apart)");

    bench::DeviceRig rig(/*llc=*/4ull << 20);
    Trace trace;
    rig.memory->controller(0).setObserver(&trace);

    // Span tracing with the DDR mirror on: the spans JSON carries the
    // same CAS stream as the CSV, attributed to CompCpy spans.
    sd::trace::tracer().clear();
    sd::trace::tracer().enable(/*capture_ddr=*/true);

    Rng rng(1);
    constexpr int kCores = 4;
    constexpr int kCallsPerCore = 6;
    constexpr std::size_t kMsg = 16384;

    // Interleave the cores' CompCpys: each call's async flow advances
    // whenever the event loop runs, so the four streams overlap on
    // the channel exactly as four cores would.
    int outstanding = 0;
    std::uint64_t message_id = 1;
    for (int call = 0; call < kCallsPerCore; ++call) {
        for (int core = 0; core < kCores; ++core) {
            // Buffers spaced 32 MB apart per the paper's setup.
            const Addr sbuf = (1ULL << 20) +
                              static_cast<Addr>(core) * (32ULL << 20) +
                              static_cast<Addr>(call) * (1ULL << 20);
            const Addr dbuf = sbuf + (16ULL << 20);
            std::vector<std::uint8_t> data(kMsg);
            rng.fill(data.data(), data.size());
            rig.memory->writeSync(sbuf, data.data(), data.size());

            compcpy::CompCpyParams params;
            params.sbuf = sbuf;
            params.dbuf = dbuf;
            params.size = kMsg;
            params.ulp = smartdimm::UlpKind::kTlsEncrypt;
            params.message_id = message_id++;
            rng.fill(params.key, sizeof(params.key));
            rng.fill(params.iv.data(), params.iv.size());

            ++outstanding;
            rig.engine.start(params, [&outstanding, &rig, dbuf] {
                --outstanding;
                // USE: flush the destination so self-recycle drains.
                rig.engine.use(dbuf, kMsg + kPageSize, [] {});
            });
        }
        rig.events.run();
    }
    rig.events.run();

    // Summarise.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    for (const auto &row : trace.rows)
        (row.is_write ? writes : reads)++;
    std::printf("trace rows: %zu (%llu rdCAS, %llu wrCAS)\n",
                trace.rows.size(),
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes));

    // Monotonicity check within each CompCpy's source range (the
    // paper's magnified inset).
    std::vector<Addr> sbuf_reads;
    for (const auto &row : trace.rows)
        if (!row.is_write && row.addr >= (1ULL << 20) &&
            row.addr < (1ULL << 20) + kMsg)
            sbuf_reads.push_back(row.addr);
    const bool monotonic =
        std::is_sorted(sbuf_reads.begin(), sbuf_reads.end());
    std::printf("first CompCpy sbuf rdCAS count: %zu, monotonic: %s\n",
                sbuf_reads.size(), monotonic ? "yes" : "no");

    std::FILE *csv = std::fopen("fig09_trace.csv", "w");
    if (csv) {
        std::fprintf(csv, "tick,type,address\n");
        for (const auto &row : trace.rows)
            std::fprintf(csv, "%llu,%s,%llu\n",
                         static_cast<unsigned long long>(row.tick),
                         row.is_write ? "wr" : "rd",
                         static_cast<unsigned long long>(row.addr));
        std::fclose(csv);
        std::printf("wrote fig09_trace.csv (%zu rows)\n",
                    trace.rows.size());
    }

    const auto &arb = rig.dimm.stats();
    std::printf("device: sbuf_reads=%llu recycles=%llu alert_n=%llu\n",
                static_cast<unsigned long long>(arb.sbuf_reads),
                static_cast<unsigned long long>(arb.dbuf_recycles),
                static_cast<unsigned long long>(arb.alert_n));

    sd::trace::StatsRegistry registry;
    rig.registerStats(registry);
    bench::writeStatsJson("fig09", registry);
    bench::writeSpansJson("fig09", &registry);
    sd::trace::tracer().disable();
    std::printf("\nPaper shape: reads (sources) interleaved with "
                "writes (self-recycles of earlier destinations);\n"
                "addresses increase monotonically within a CompCpy.\n");
    return 0;
}
