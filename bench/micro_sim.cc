/**
 * @file
 * Simulator-throughput microbenchmark: how fast does the *simulator
 * itself* run, independent of what the simulated hardware achieves?
 *
 * Fleet-scale runs (hundreds of thousands of
 * connections, multi-DIMM sweeps) multiply simulated-event counts by
 * orders of magnitude, so the event queue, FR-FCFS scan, bank-state
 * table and per-command tracing are now the wall-clock bottleneck.
 * This bench pins them with a canned workload — a closed loop of
 * 4 KB TLS CompCpys on the standard one-channel rig, the same shape
 * as the golden trace — and reports *simulator* metrics:
 *
 *  - sim_cycles_per_sec: DDR command-clock cycles (625 ps each)
 *    simulated per wall-clock second.
 *  - events_per_sec: EventQueue callbacks executed per wall second.
 *  - ops_per_sec: CompCpy invocations retired per wall second.
 *
 * Three rows isolate the tracing tax on the per-command path:
 * trace_off (tracer disabled — the pure scheduling hot path),
 * trace_spans (span recording on, DDR mirror off), and trace_ddr
 * (full DDR command mirroring, the golden-trace configuration).
 *
 * Writes BENCH_sim.json; tools/bench_gate.py compares it against
 * bench/baselines/BENCH_sim.json so a scheduler or queue regression
 * fails CI instead of silently making every other bench slower.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"

using namespace sd;

namespace {

constexpr std::size_t kMessages = 32;
constexpr std::size_t kMessageBytes = 4096;
constexpr Tick kDramPeriod = 625; // DDR4-3200 command clock, ps/cycle

struct Row
{
    std::string name;
    double wall_ns = 0;
    std::uint64_t sim_ticks = 0;
    std::uint64_t events = 0;
    std::uint64_t ops = 0;
    double sim_cycles_per_sec = 0;
    double events_per_sec = 0;
    double ops_per_sec = 0;
};

/** Pre-staged 4 KB TLS messages on a fresh rig (staging untimed). */
std::vector<compcpy::CompCpyParams>
stage(bench::DeviceRig &rig)
{
    Rng rng(7);
    std::vector<compcpy::CompCpyParams> ops;
    std::vector<std::uint8_t> plain(kMessageBytes);
    for (std::size_t i = 0; i < kMessages; ++i) {
        rng.fill(plain.data(), plain.size());
        const Addr sbuf = rig.driver.alloc(kMessageBytes);
        const Addr dbuf = rig.driver.alloc(2 * kPageSize);
        rig.memory->writeSync(sbuf, plain.data(), plain.size());

        compcpy::CompCpyParams params;
        params.sbuf = sbuf;
        params.dbuf = dbuf;
        params.size = kMessageBytes;
        params.ulp = smartdimm::UlpKind::kTlsEncrypt;
        rng.fill(params.key, sizeof(params.key));
        rng.fill(params.iv.data(), params.iv.size());
        ops.push_back(params);
    }
    return ops;
}

enum class TraceMode
{
    kOff,
    kSpans,
    kDdr,
};

Row
measure(TraceMode mode)
{
    bench::DeviceRig rig;
    auto ops = stage(rig);

    auto &tr = trace::tracer();
    tr.disable();
    tr.clear();
    if (mode != TraceMode::kOff)
        tr.enable(/*capture_ddr=*/mode == TraceMode::kDdr);

    std::uint64_t message_id = 1;
    auto runBatch = [&] {
        for (auto &op : ops) {
            op.message_id = message_id++;
            rig.engine.run(op);
        }
    };
    runBatch(); // warm the caches and the row buffers

    using Clock = std::chrono::steady_clock;
    const Tick tick0 = rig.events.now();
    const std::uint64_t ev0 = rig.events.executed();
    std::uint64_t done = 0;
    const auto start = Clock::now();
    auto now = start;
    do {
        runBatch();
        done += kMessages;
        now = Clock::now();
        // Bound the trace buffers: the throughput of *recording* is
        // what we measure, not an ever-growing event log.
        if (mode != TraceMode::kOff)
            tr.clear();
    } while (now - start < std::chrono::milliseconds(300));

    Row row;
    row.name = mode == TraceMode::kOff     ? "trace_off"
               : mode == TraceMode::kSpans ? "trace_spans"
                                           : "trace_ddr";
    row.wall_ns =
        std::chrono::duration<double, std::nano>(now - start).count();
    row.sim_ticks = rig.events.now() - tick0;
    row.events = rig.events.executed() - ev0;
    row.ops = done;
    const double wall_s = row.wall_ns / 1e9;
    row.sim_cycles_per_sec =
        static_cast<double>(row.sim_ticks / kDramPeriod) / wall_s;
    row.events_per_sec = static_cast<double>(row.events) / wall_s;
    row.ops_per_sec = static_cast<double>(row.ops) / wall_s;

    tr.disable();
    tr.clear();
    return row;
}

void
writeJson(const std::vector<Row> &rows)
{
    std::ofstream os("BENCH_sim.json");
    if (!os) {
        std::printf("could not write BENCH_sim.json\n");
        return;
    }
    os << "{\n  \"workload\": \"tls4k_compcpy\",\n"
       << "  \"messages\": " << kMessages << ",\n"
       << "  \"bytes_per_op\": " << kMessageBytes << ",\n"
       << "  \"results\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        os << "    {\"name\": \"" << r.name << "\", "
           << "\"sim_cycles_per_sec\": " << r.sim_cycles_per_sec << ", "
           << "\"events_per_sec\": " << r.events_per_sec << ", "
           << "\"ops_per_sec\": " << r.ops_per_sec << ", "
           << "\"sim_ticks\": " << r.sim_ticks << ", "
           << "\"events\": " << r.events << ", "
           << "\"wall_ns\": " << r.wall_ns << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote BENCH_sim.json\n");
}

} // namespace

int
main()
{
    bench::header("Simulator hot-path microbenchmark (DESIGN.md sec. 12)",
                  "sim-cycles/sec and events/sec on a TLS-4K CompCpy loop");

    std::printf("%-12s %16s %14s %12s %10s\n", "mode", "sim_Mcyc/s",
                "events/s", "ops/s", "events/op");
    std::vector<Row> rows;
    for (const TraceMode mode :
         {TraceMode::kOff, TraceMode::kSpans, TraceMode::kDdr}) {
        Row row = measure(mode);
        std::printf("%-12s %16.2f %14.0f %12.0f %10.1f\n",
                    row.name.c_str(), row.sim_cycles_per_sec / 1e6,
                    row.events_per_sec, row.ops_per_sec,
                    static_cast<double>(row.events) /
                        static_cast<double>(row.ops));
        rows.push_back(row);
    }
    writeJson(rows);

    std::printf("\nThese are *simulator* metrics (wall clock), not\n"
                "simulated-hardware throughput: they gate the cost of\n"
                "the event queue, FR-FCFS scan, bank table and tracing\n"
                "so fleet-scale sweeps stay tractable.\n");
    return 0;
}
